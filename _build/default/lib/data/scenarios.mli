(** Data for the paper's motivating scenarios (§1, §2.2, §2.4). *)

open Holistic_storage

val tpcc_results : ?seed:int -> rows:int -> unit -> Table.t
(** Historical TPC-C submissions (§2.4): [dbsystem] (string), [tps] (float,
    trending upward over the years with noise), [submission_date]. *)

val stock_orders : ?seed:int -> rows:int -> unit -> Table.t
(** Stock limit orders (§2.2): [price], [placement_time] (int seconds),
    [good_for] (int seconds, per-row validity interval — the non-constant
    frame bound example). *)

val uniform_ints : ?seed:int -> n:int -> bound:int -> unit -> int array

val zipf_ints : ?seed:int -> n:int -> bound:int -> ?alpha:float -> unit -> int array
(** Zipf-distributed values in [\[0, bound)] — heavy duplication, the
    adversarial input for 2-way quicksort (§5.3). *)
