(** Deterministic in-process TPC-H-style data (DESIGN.md substitution table).

    The experiments only consume a handful of column distributions of the
    dbgen tables; this generator reproduces those: order dates uniform over
    1992-01-01 .. 1998-08-02, ship dates 1–121 days after the order, receipt
    dates 1–30 days after shipping, ~1 part key per 30 rows (TPC-H's 6 M
    lineitems over 200 k parts), retail-price-formula extended prices, and
    ~1 customer per 10 orders. Generation is seeded and O(n). *)

open Holistic_storage

val lineitem : ?seed:int -> rows:int -> unit -> Table.t
(** Columns: [l_orderkey], [l_partkey], [l_suppkey], [l_quantity],
    [l_extendedprice], [l_discount], [l_shipdate], [l_commitdate],
    [l_receiptdate] — the subset used by the paper's queries. *)

val orders : ?seed:int -> rows:int -> unit -> Table.t
(** Columns: [o_orderkey], [o_custkey], [o_orderdate], [o_totalprice]. *)

val scale_factor_rows : float -> int
(** Lineitem rows at a given TPC-H scale factor (6_001_215 per SF). *)
