open Holistic_storage
module Rng = Holistic_util.Rng

let start_date = Value.date_of_ymd 1992 1 1
let end_order_date = Value.date_of_ymd 1998 8 2

let scale_factor_rows sf = int_of_float (6_001_215.0 *. sf)

(* TPC-H retail price formula: 90000 + ((p/10) mod 20001) + 100*(p mod 1000),
   in cents. *)
let part_price partkey =
  float_of_int (90_000 + (partkey / 10 mod 20_001) + (100 * (partkey mod 1_000))) /. 100.0

let lineitem ?(seed = 42) ~rows () =
  let rng = Rng.create seed in
  let nparts = max 200 (rows / 30) in
  let norders = max 1 (rows / 4) in
  let orderkey = Array.make rows 0 in
  let partkey = Array.make rows 0 in
  let suppkey = Array.make rows 0 in
  let quantity = Array.make rows 0 in
  let extendedprice = Array.make rows 0.0 in
  let discount = Array.make rows 0.0 in
  let shipdate = Array.make rows 0 in
  let commitdate = Array.make rows 0 in
  let receiptdate = Array.make rows 0 in
  for i = 0 to rows - 1 do
    let ok = 1 + Rng.int rng norders in
    let pk = 1 + Rng.int rng nparts in
    let qty = 1 + Rng.int rng 50 in
    let odate = Rng.int_in rng start_date end_order_date in
    let sdate = odate + 1 + Rng.int rng 121 in
    orderkey.(i) <- ok;
    partkey.(i) <- pk;
    suppkey.(i) <- 1 + Rng.int rng (max 10 (nparts / 20));
    quantity.(i) <- qty;
    extendedprice.(i) <- float_of_int qty *. part_price pk;
    discount.(i) <- float_of_int (Rng.int rng 11) /. 100.0;
    shipdate.(i) <- sdate;
    commitdate.(i) <- odate + 30 + Rng.int rng 61;
    receiptdate.(i) <- sdate + 1 + Rng.int rng 30
  done;
  Table.create
    [
      ("l_orderkey", Column.ints orderkey);
      ("l_partkey", Column.ints partkey);
      ("l_suppkey", Column.ints suppkey);
      ("l_quantity", Column.ints quantity);
      ("l_extendedprice", Column.floats extendedprice);
      ("l_discount", Column.floats discount);
      ("l_shipdate", Column.dates shipdate);
      ("l_commitdate", Column.dates commitdate);
      ("l_receiptdate", Column.dates receiptdate);
    ]

let orders ?(seed = 43) ~rows () =
  let rng = Rng.create seed in
  let ncust = max 10 (rows / 10) in
  let orderkey = Array.init rows (fun i -> i + 1) in
  let custkey = Array.make rows 0 in
  let orderdate = Array.make rows 0 in
  let totalprice = Array.make rows 0.0 in
  for i = 0 to rows - 1 do
    custkey.(i) <- 1 + Rng.int rng ncust;
    orderdate.(i) <- Rng.int_in rng start_date end_order_date;
    totalprice.(i) <- 1_000.0 +. Rng.float rng 450_000.0
  done;
  Table.create
    [
      ("o_orderkey", Column.ints orderkey);
      ("o_custkey", Column.ints custkey);
      ("o_orderdate", Column.dates orderdate);
      ("o_totalprice", Column.floats totalprice);
    ]
