lib/util/rng.mli:
