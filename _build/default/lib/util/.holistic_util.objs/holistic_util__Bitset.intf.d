lib/util/bitset.mli:
