lib/util/binary_search.mli:
