lib/util/binary_search.ml: Array
