(** Binary-search kernels over sorted integer array segments.

    All functions operate on the half-open segment [\[lo, hi)] of [a], which
    must be sorted in non-decreasing order. Results are absolute indices. *)

val lower_bound : int array -> lo:int -> hi:int -> int -> int
(** [lower_bound a ~lo ~hi x] is the smallest index [i] in [\[lo, hi\]] such
    that every element of [a.(lo..i-1)] is [< x]; equivalently the position
    where [x] would be inserted to keep the segment sorted, before any equal
    elements. Returns [hi] when every element is [< x]. *)

val upper_bound : int array -> lo:int -> hi:int -> int -> int
(** [upper_bound a ~lo ~hi x] is the smallest index [i] such that every
    element of [a.(lo..i-1)] is [<= x]. *)

val lower_bound_f : float array -> lo:int -> hi:int -> float -> int
(** [lower_bound_f] is {!lower_bound} for float arrays. *)

val lower_bound_by : (int -> int) -> lo:int -> hi:int -> int
(** [lower_bound_by cmp ~lo ~hi] generalises {!lower_bound} to an abstract
    monotone predicate: [cmp i < 0] must mean "element [i] is below the
    target". Returns the first index whose [cmp] is [>= 0], or [hi]. *)
