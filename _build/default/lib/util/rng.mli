(** Deterministic, splittable pseudo-random number generation (splitmix64).

    All data generators and property tests derive their randomness from this
    module so that every experiment in the repository is reproducible from a
    seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
