let lower_bound (a : int array) ~lo ~hi x =
  let lo = ref lo and len = ref (hi - lo) in
  while !len > 0 do
    let half = !len / 2 in
    let mid = !lo + half in
    if Array.unsafe_get a mid < x then begin
      lo := mid + 1;
      len := !len - half - 1
    end else len := half
  done;
  !lo

let upper_bound (a : int array) ~lo ~hi x =
  let lo = ref lo and len = ref (hi - lo) in
  while !len > 0 do
    let half = !len / 2 in
    let mid = !lo + half in
    if Array.unsafe_get a mid <= x then begin
      lo := mid + 1;
      len := !len - half - 1
    end else len := half
  done;
  !lo

let lower_bound_f (a : float array) ~lo ~hi x =
  let lo = ref lo and len = ref (hi - lo) in
  while !len > 0 do
    let half = !len / 2 in
    let mid = !lo + half in
    if Array.unsafe_get a mid < x then begin
      lo := mid + 1;
      len := !len - half - 1
    end else len := half
  done;
  !lo

let lower_bound_by cmp ~lo ~hi =
  let lo = ref lo and len = ref (hi - lo) in
  while !len > 0 do
    let half = !len / 2 in
    let mid = !lo + half in
    if cmp mid < 0 then begin
      lo := mid + 1;
      len := !len - half - 1
    end else len := half
  done;
  !lo
