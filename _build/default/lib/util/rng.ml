type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* 62 usable non-negative bits ([Int64.to_int] truncates to a signed
     63-bit value, so the top bit must be masked off); modulo bias is
     negligible for the bounds used in this repository (far below 2^32). *)
  let v = Int64.to_int (next t) land max_int in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L
