(** Growable integer vectors with amortised O(1) push. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit
val push : t -> int -> unit

val pop : t -> int
(** Removes and returns the last element. @raise Invalid_argument if empty. *)

val clear : t -> unit

val to_array : t -> int array
(** Fresh array with the current contents. *)

val unsafe_data : t -> int array
(** The backing store; only indices [< length] are meaningful. Becomes stale
    after the next growing [push]. Intended for read-only hot loops. *)
