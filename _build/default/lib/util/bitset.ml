type t = { words : Bytes.t; n : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Bytes.make ((n + 7) / 8) '\000'; n }

let length t = t.n

let check t i = if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let set t i =
  check t i;
  let b = i lsr 3 in
  Bytes.unsafe_set t.words b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.words b) lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let b = i lsr 3 in
  Bytes.unsafe_set t.words b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.words b) land lnot (1 lsl (i land 7))))

let get t i =
  check t i;
  Char.code (Bytes.unsafe_get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let clear_all t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let set_all t =
  Bytes.fill t.words 0 (Bytes.length t.words) '\255';
  (* Clear the padding bits of the last byte so that [count] stays exact. *)
  for i = t.n to (Bytes.length t.words * 8) - 1 do
    let b = i lsr 3 in
    Bytes.unsafe_set t.words b
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.words b) land lnot (1 lsl (i land 7))))
  done

let popcount_byte =
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  fun c -> Array.unsafe_get tbl (Char.code c)

let count t =
  let acc = ref 0 in
  for b = 0 to Bytes.length t.words - 1 do
    acc := !acc + popcount_byte (Bytes.unsafe_get t.words b)
  done;
  !acc

let copy t = { words = Bytes.copy t.words; n = t.n }

let union a b =
  if a.n <> b.n then invalid_arg "Bitset.union: capacity mismatch";
  let r = copy a in
  for i = 0 to Bytes.length r.words - 1 do
    Bytes.unsafe_set r.words i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get a.words i) lor Char.code (Bytes.unsafe_get b.words i)))
  done;
  r

let iter_set t f =
  for i = 0 to t.n - 1 do
    if Char.code (Bytes.unsafe_get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0 then f i
  done
