type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (max capacity 1) 0; len = 0 }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Int_vec.get";
  Array.unsafe_get t.data i

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Int_vec.set";
  Array.unsafe_set t.data i x

let grow t =
  let data = Array.make (2 * Array.length t.data) 0 in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t;
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Int_vec.pop: empty";
  t.len <- t.len - 1;
  Array.unsafe_get t.data t.len

let clear t = t.len <- 0

let to_array t = Array.sub t.data 0 t.len

let unsafe_data t = t.data
