(** Fixed-capacity mutable bitsets, used for NULL masks and row filters. *)

type t

val create : int -> t
(** [create n] is a bitset of capacity [n] with all bits cleared. *)

val length : t -> int
(** Capacity given at creation time. *)

val set : t -> int -> unit
val clear : t -> int -> unit
val get : t -> int -> bool

val set_all : t -> unit
val clear_all : t -> unit

val count : t -> int
(** Number of set bits. *)

val copy : t -> t

val union : t -> t -> t
(** [union a b] is a fresh bitset with the elementwise OR; capacities must
    match. *)

val iter_set : t -> (int -> unit) -> unit
(** [iter_set t f] applies [f] to the index of every set bit, ascending. *)
