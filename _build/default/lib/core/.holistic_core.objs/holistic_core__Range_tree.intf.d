lib/core/range_tree.mli: Holistic_parallel
