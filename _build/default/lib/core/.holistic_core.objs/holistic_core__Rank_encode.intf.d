lib/core/rank_encode.mli: Holistic_parallel
