lib/core/annotated_mst.ml: Array Mst
