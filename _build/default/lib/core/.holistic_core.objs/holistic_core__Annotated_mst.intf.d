lib/core/annotated_mst.mli: Holistic_parallel
