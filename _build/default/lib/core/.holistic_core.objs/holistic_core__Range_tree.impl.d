lib/core/range_tree.ml: Array Mst Prev_occurrence
