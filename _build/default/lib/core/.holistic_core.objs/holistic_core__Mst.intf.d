lib/core/mst.mli: Holistic_parallel
