lib/core/rank_encode.ml: Array Float Holistic_parallel Holistic_sort
