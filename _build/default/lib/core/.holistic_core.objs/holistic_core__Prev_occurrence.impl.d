lib/core/prev_occurrence.ml: Array Holistic_parallel Holistic_sort
