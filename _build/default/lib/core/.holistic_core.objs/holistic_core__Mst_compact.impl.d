lib/core/mst_compact.ml: Array Bigarray Int32 Mst Printf
