lib/core/mst_compact.mli: Mst
