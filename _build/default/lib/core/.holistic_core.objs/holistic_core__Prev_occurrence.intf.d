lib/core/prev_occurrence.mli: Holistic_parallel
