lib/core/mst.ml: Array Holistic_parallel Holistic_util Option Printf
