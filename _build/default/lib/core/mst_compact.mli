(** 32-bit merge sort trees (paper §5.1).

    The paper builds its trees with 32-bit integers whenever the partition
    fits, halving memory and easing memory-bandwidth pressure. This module
    is the OCaml analogue: a bit-identical clone of a built {!Mst} with all
    level and cursor arrays re-encoded into int32 bigarrays, answering the
    same count and select queries. Mirrors the paper's per-width template
    instantiation; the [ablation-store] benchmark measures the resulting
    space/time trade-off (in OCaml the 4-byte reads box through [Int32], so
    unlike C++ the compact tree trades some CPU for the halved footprint).

    Build 64-bit, convert once, drop the original: peak memory during
    conversion is 1.5× the 64-bit tree. *)

type t

val of_mst : Mst.t -> t
(** @raise Invalid_argument if any stored value falls outside int32 range. *)

val length : t -> int

val count : t -> lo:int -> hi:int -> less_than:int -> int
(** Same contract as {!Mst.count}. *)

val count_ranges : t -> ranges:(int * int) array -> less_than:int -> int

val select : t -> ranges:(int * int) array -> nth:int -> int
(** Same contract as {!Mst.select}. *)

val count_value_ranges : t -> ranges:(int * int) array -> int

val heap_bytes : t -> int
(** Bytes held by the compact representation (4 per element). *)
