module Task_pool = Holistic_parallel.Task_pool
module Parallel_sort = Holistic_sort.Parallel_sort

let compute ?pool values =
  let pool = match pool with Some p -> p | None -> Task_pool.default () in
  let n = Array.length values in
  let key = Array.copy values in
  let idx = Array.init n (fun i -> i) in
  (* Lexicographic (value, position) sort = stable sort by value (Alg. 1
     line 5): duplicates end up adjacent, ordered by original position. *)
  Parallel_sort.sort_pairs pool ~key ~payload:idx;
  let prev = Array.make n 0 in
  (* The comparison at a chunk's first position reads the last element of
     the preceding chunk; [key]/[idx] are read-only here and every chunk
     writes disjoint [prev] slots, so chunks are independent. *)
  Task_pool.parallel_for pool ~lo:0 ~hi:n ~chunk:Task_pool.default_task_size (fun lo hi ->
      for i = max lo 1 to hi - 1 do
        if key.(i) = key.(i - 1) then prev.(idx.(i)) <- idx.(i - 1) + 1
      done);
  prev

let distinct_in_frame encoded ~lo ~hi =
  let acc = ref 0 in
  for i = max lo 0 to min hi (Array.length encoded - 1) do
    if encoded.(i) < lo + 1 then incr acc
  done;
  !acc
