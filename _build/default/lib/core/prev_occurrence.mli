(** Back-reference preprocessing for windowed DISTINCT aggregates
    (Algorithm 1, §4.2, with the integer encoding of §5.1).

    For each position [i] the previous occurrence of the same value, encoded
    as [prev + 1] (and [0] when the value appears for the first time), so the
    array is directly usable as merge-sort-tree payload: the number of
    distinct values in frame [\[lo, hi\]] equals the number of positions
    [i ∈ [lo, hi]] with [encoded.(i) < lo + 1]. *)

val compute : ?pool:Holistic_parallel.Task_pool.t -> int array -> int array
(** [compute values] returns the encoded previous-occurrence array. Values
    are compared by integer equality; callers hash non-integer data first
    (§6.7). The sort step runs on [pool]. *)

val distinct_in_frame : int array -> lo:int -> hi:int -> int
(** Reference implementation: counts qualifying back-references by a linear
    scan of the encoded array — O(frame) per call, used by tests and the
    naive competitor. Frame bounds are inclusive positions. *)
