module Bs = Holistic_util.Binary_search
module Task_pool = Holistic_parallel.Task_pool

type t = {
  n : int;
  fanout : int;
  sample : int;
  levels : int array array;
  (* payloads.(j).(i) = base position the element levels.(j).(i) came from *)
  payloads : int array array option;
  (* stride.(j) = fanout^j, the nominal run length of level j *)
  stride : int array;
  (* cursors.(j) holds the sampled merge-cursor states of level j+1's runs:
     for the run with index r at level j+1 and sampled position s (a multiple
     of [sample]), entry [(r * spr.(j) + s / sample) * fanout + c] is the
     number of elements of child c (at level j) among the first s elements of
     the run. Empty when [sample = 0]. *)
  cursors : int array array;
  (* spr.(j) = sampled states per run of level j+1 *)
  spr : int array;
}

let length t = t.n
let fanout t = t.fanout
let sample t = t.sample
let base t = t.levels.(0)
let levels t = t.levels

let payload_levels t =
  match t.payloads with
  | Some p -> p
  | None -> invalid_arg "Mst.payload_levels: tree was built without ~track_payload"

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* Merge the children of one output run of level [j] (children live at level
   [j - 1], have nominal length [child_stride] and tile [run_base, run_base +
   run_len)), writing the sorted output and recording cursor states. *)
let merge_one_run ~src ~src_payload ~dst ~dst_payload ~cursors ~state_base ~fanout ~sample
    ~run_base ~run_len ~child_stride =
  let nc = ((run_len - 1) / child_stride) + 1 in
  (* cur.(c): relative cursor into child c *)
  let cur = Array.make nc 0 in
  let child_len c = min child_stride (run_len - (c * child_stride)) in
  (* binary min-heap of (value, child); ties broken by child index *)
  let hval = Array.make nc 0 and hchild = Array.make nc 0 in
  let hsize = ref 0 in
  let less i j =
    hval.(i) < hval.(j) || (hval.(i) = hval.(j) && hchild.(i) < hchild.(j))
  in
  let swap i j =
    let tv = hval.(i) and tc = hchild.(i) in
    hval.(i) <- hval.(j);
    hchild.(i) <- hchild.(j);
    hval.(j) <- tv;
    hchild.(j) <- tc
  in
  let rec down i =
    let l = (2 * i) + 1 in
    if l < !hsize then begin
      let m = if l + 1 < !hsize && less (l + 1) l then l + 1 else l in
      if less m i then begin
        swap i m;
        down m
      end
    end
  in
  let rec up i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if less i p then begin
        swap i p;
        up p
      end
    end
  in
  for c = 0 to nc - 1 do
    if child_len c > 0 then begin
      hval.(!hsize) <- src.(run_base + (c * child_stride));
      hchild.(!hsize) <- c;
      incr hsize;
      up (!hsize - 1)
    end
  done;
  let record s =
    if sample > 0 then begin
      let b = state_base + (s / sample * fanout) in
      for c = 0 to nc - 1 do
        cursors.(b + c) <- cur.(c)
      done
      (* children beyond nc (ragged run) keep their zero entries *)
    end
  in
  for emitted = 0 to run_len - 1 do
    if sample > 0 && emitted mod sample = 0 then record emitted;
    let v = hval.(0) and c = hchild.(0) in
    dst.(run_base + emitted) <- v;
    (match src_payload, dst_payload with
    | Some sp, Some dp -> dp.(run_base + emitted) <- sp.(run_base + (c * child_stride) + cur.(c))
    | _ -> ());
    cur.(c) <- cur.(c) + 1;
    if cur.(c) < child_len c then begin
      hval.(0) <- src.(run_base + (c * child_stride) + cur.(c));
      down 0
    end
    else begin
      decr hsize;
      if !hsize > 0 then begin
        swap 0 !hsize;
        down 0
      end
    end
  done;
  if sample > 0 && run_len mod sample = 0 then record run_len

let create ?pool ?(fanout = 32) ?(sample = 32) ?(track_payload = false) a =
  if fanout < 2 then invalid_arg "Mst.create: fanout must be >= 2";
  if sample < 0 then invalid_arg "Mst.create: sample must be >= 0";
  let pool = match pool with Some p -> p | None -> Task_pool.default () in
  let n = Array.length a in
  (* Number of levels above the base: smallest h with fanout^h >= n. *)
  let h = ref 0 in
  let s = ref 1 in
  while !s < n do
    s := !s * fanout;
    incr h
  done;
  let h = !h in
  let stride = Array.make (h + 1) 1 in
  for j = 1 to h do
    stride.(j) <- stride.(j - 1) * fanout
  done;
  let levels = Array.init (h + 1) (fun j -> if j = 0 then Array.copy a else Array.make n 0) in
  let payloads =
    if track_payload then
      Some (Array.init (h + 1) (fun j -> if j = 0 then Array.init n (fun i -> i) else Array.make n 0))
    else None
  in
  let spr = Array.make h 0 in
  let cursors =
    Array.init h (fun j ->
        if sample = 0 then [||]
        else begin
          let run_len = min stride.(j + 1) n in
          let nruns = if n = 0 then 0 else ((n - 1) / stride.(j + 1)) + 1 in
          spr.(j) <- (run_len / sample) + 1;
          Array.make (nruns * spr.(j) * fanout) 0
        end)
  in
  for j = 1 to h do
    let l = stride.(j) in
    let nruns = ((n - 1) / l) + 1 in
    let src = levels.(j - 1) and dst = levels.(j) in
    let src_payload = Option.map (fun p -> p.(j - 1)) payloads in
    let dst_payload = Option.map (fun p -> p.(j)) payloads in
    (* Group whole runs into tasks of roughly the pool's task size. *)
    let runs_per_task = max 1 (Task_pool.default_task_size / l) in
    Task_pool.parallel_for pool ~lo:0 ~hi:nruns ~chunk:runs_per_task (fun rlo rhi ->
        for r = rlo to rhi - 1 do
          let run_base = r * l in
          let run_len = min l (n - run_base) in
          merge_one_run ~src ~src_payload ~dst ~dst_payload ~cursors:cursors.(j - 1)
            ~state_base:(r * spr.(j - 1) * fanout)
            ~fanout ~sample ~run_base ~run_len ~child_stride:stride.(j - 1)
        done)
  done;
  { n; fanout; sample; levels; payloads; stride; cursors; spr }

(* ------------------------------------------------------------------ *)
(* Cascaded child positions                                            *)
(* ------------------------------------------------------------------ *)

(* Position of [less_than] inside child [c] of the node at level [j] spanning
   [run_base, run_base + run_len), given [pos], the position of [less_than]
   in the node's own sorted run: the number of child-c elements < less_than.
   The sampled cursor state at s = ⌊pos/k⌋·k bounds the answer to a window of
   at most [pos - s < k] elements (§4.2). *)
let child_position t j run_base pos less_than c ~child_base ~child_len =
  let below = t.levels.(j - 1) in
  if t.sample = 0 then
    Bs.lower_bound below ~lo:child_base ~hi:(child_base + child_len) less_than - child_base
  else begin
    let k = t.sample in
    let s = pos / k * k in
    let run_idx = run_base / t.stride.(j) in
    let sbase = ((run_idx * t.spr.(j - 1)) + (s / k)) * t.fanout in
    let off = t.cursors.(j - 1).(sbase + c) in
    let whi = min (off + (pos - s)) child_len in
    Bs.lower_bound below ~lo:(child_base + off) ~hi:(child_base + whi) less_than - child_base
  end

(* ------------------------------------------------------------------ *)
(* Counting                                                            *)
(* ------------------------------------------------------------------ *)

let rec descend_count t j run_base run_len pos lo hi less_than =
  (* invariant: [lo,hi) intersects but does not contain [run_base, run_base+run_len) *)
  let lc = t.stride.(j - 1) in
  let nc = ((run_len - 1) / lc) + 1 in
  (* hoisted per-node cascade state (the per-child lookup only varies in the
     cursor slot and search window) *)
  let below = t.levels.(j - 1) in
  let sbase, slack =
    if t.sample = 0 then (0, 0)
    else begin
      let k = t.sample in
      let s = pos / k * k in
      let run_idx = run_base / t.stride.(j) in
      (((run_idx * t.spr.(j - 1)) + (s / k)) * t.fanout, pos - s)
    end
  in
  let cpos c ~child_base ~child_len =
    if t.sample = 0 then
      Bs.lower_bound below ~lo:child_base ~hi:(child_base + child_len) less_than - child_base
    else begin
      let off = Array.unsafe_get t.cursors.(j - 1) (sbase + c) in
      let whi = min (off + slack) child_len in
      Bs.lower_bound below ~lo:(child_base + off) ~hi:(child_base + whi) less_than - child_base
    end
  in
  let c_first = if lo <= run_base then 0 else (lo - run_base) / lc in
  let c_last = if hi >= run_base + run_len then nc - 1 else (hi - 1 - run_base) / lc in
  let inside = c_last - c_first + 1 in
  (* contribution of child [c], whether covered or partial *)
  let contrib cp ~child_base ~child_len =
    if lo <= child_base && child_base + child_len <= hi then cp
    else descend_count t (j - 1) child_base child_len cp lo hi less_than
  in
  if 2 * inside <= nc + 2 then begin
    (* few children intersect: sum them directly *)
    let acc = ref 0 in
    for c = c_first to c_last do
      let child_base = run_base + (c * lc) in
      let child_len = min lc (run_len - (c * lc)) in
      acc := !acc + contrib (cpos c ~child_base ~child_len) ~child_base ~child_len
    done;
    !acc
  end
  else begin
    (* most children are covered: start from the node's own count and
       subtract the children outside the range (the cheaper complement) *)
    let acc = ref pos in
    for c = 0 to c_first - 1 do
      let child_base = run_base + (c * lc) in
      let child_len = min lc (run_len - (c * lc)) in
      acc := !acc - cpos c ~child_base ~child_len
    done;
    for c = c_last + 1 to nc - 1 do
      let child_base = run_base + (c * lc) in
      let child_len = min lc (run_len - (c * lc)) in
      acc := !acc - cpos c ~child_base ~child_len
    done;
    let fix c =
      let child_base = run_base + (c * lc) in
      let child_len = min lc (run_len - (c * lc)) in
      if not (lo <= child_base && child_base + child_len <= hi) then begin
        let cp = cpos c ~child_base ~child_len in
        acc := !acc - cp + descend_count t (j - 1) child_base child_len cp lo hi less_than
      end
    in
    fix c_first;
    if c_last <> c_first then fix c_last;
    !acc
  end

let count t ~lo ~hi ~less_than =
  let lo = max lo 0 and hi = min hi t.n in
  if lo >= hi then 0
  else begin
    let h = Array.length t.levels - 1 in
    let pos = Bs.lower_bound t.levels.(h) ~lo:0 ~hi:t.n less_than in
    if lo = 0 && hi = t.n then pos
    else descend_count t h 0 t.n pos lo hi less_than
  end

let count_ranges t ~ranges ~less_than =
  Array.fold_left (fun acc (lo, hi) -> acc + count t ~lo ~hi ~less_than) 0 ranges

let rec descend_iter t j run_base run_len pos lo hi less_than f =
  let child_stride = t.stride.(j - 1) in
  let nc = ((run_len - 1) / child_stride) + 1 in
  for c = 0 to nc - 1 do
    let child_base = run_base + (c * child_stride) in
    let child_len = min child_stride (run_len - (c * child_stride)) in
    if child_base < hi && child_base + child_len > lo then begin
      let cpos = child_position t j run_base pos less_than c ~child_base ~child_len in
      if lo <= child_base && child_base + child_len <= hi then
        f ~level:(j - 1) ~base:child_base ~prefix:cpos
      else descend_iter t (j - 1) child_base child_len cpos lo hi less_than f
    end
  done

let iter_covered t ~lo ~hi ~less_than f =
  let lo = max lo 0 and hi = min hi t.n in
  if lo < hi then begin
    let h = Array.length t.levels - 1 in
    let pos = Bs.lower_bound t.levels.(h) ~lo:0 ~hi:t.n less_than in
    if lo = 0 && hi = t.n then f ~level:h ~base:0 ~prefix:pos
    else descend_iter t h 0 t.n pos lo hi less_than f
  end

(* ------------------------------------------------------------------ *)
(* Selection                                                           *)
(* ------------------------------------------------------------------ *)

let count_value_ranges t ~ranges =
  if t.n = 0 then 0
  else begin
    let h = Array.length t.levels - 1 in
    let top = t.levels.(h) in
    Array.fold_left
      (fun acc (vlo, vhi) ->
        acc + Bs.lower_bound top ~lo:0 ~hi:t.n vhi - Bs.lower_bound top ~lo:0 ~hi:t.n vlo)
      0 ranges
  end

(* [bounds] holds, for the current node's run, the run-relative position of
   every range bound: bounds.(2r) for ranges.(r)'s lower value bound,
   bounds.(2r+1) for its upper. The qualifying count inside the node is
   Σ (bounds.(2r+1) - bounds.(2r)). *)
let rec descend_select t j run_base run_len (ranges : (int * int) array) bounds m =
  if j = 0 then begin
    assert (m = 0);
    t.levels.(0).(run_base)
  end
  else begin
    let child_stride = t.stride.(j - 1) in
    let nc = ((run_len - 1) / child_stride) + 1 in
    let nr = Array.length ranges in
    let child_bounds = Array.make (2 * nr) 0 in
    let m = ref m in
    let result = ref 0 in
    let found = ref false in
    let c = ref 0 in
    while not !found do
      assert (!c < nc);
      let child_base = run_base + (!c * child_stride) in
      let child_len = min child_stride (run_len - (!c * child_stride)) in
      let qual = ref 0 in
      for b = 0 to (2 * nr) - 1 do
        let v = if b land 1 = 0 then fst ranges.(b / 2) else snd ranges.(b / 2) in
        child_bounds.(b) <-
          child_position t j run_base bounds.(b) v !c ~child_base ~child_len;
        if b land 1 = 1 then qual := !qual + child_bounds.(b) - child_bounds.(b - 1)
      done;
      if !m < !qual then begin
        result := descend_select t (j - 1) child_base child_len ranges child_bounds !m;
        found := true
      end
      else begin
        m := !m - !qual;
        incr c
      end
    done;
    !result
  end

let select t ~ranges ~nth =
  let total = count_value_ranges t ~ranges in
  if nth < 0 || nth >= total then
    invalid_arg
      (Printf.sprintf "Mst.select: nth=%d out of bounds (%d qualifying)" nth total);
  let h = Array.length t.levels - 1 in
  let top = t.levels.(h) in
  let nr = Array.length ranges in
  let bounds = Array.make (2 * nr) 0 in
  for r = 0 to nr - 1 do
    let vlo, vhi = ranges.(r) in
    bounds.(2 * r) <- Bs.lower_bound top ~lo:0 ~hi:t.n vlo;
    bounds.((2 * r) + 1) <- Bs.lower_bound top ~lo:0 ~hi:t.n vhi
  done;
  descend_select t h 0 t.n ranges bounds nth

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type internals = {
  int_levels : int array array;
  int_cursors : int array array;
  strides : int array;
  states_per_run : int array;
}

let internals t =
  { int_levels = t.levels; int_cursors = t.cursors; strides = t.stride; states_per_run = t.spr }

type stats = {
  level_elements : int;
  cursor_elements : int;
  payload_elements : int;
  heap_bytes : int;
}

let stats t =
  let level_elements = Array.fold_left (fun acc l -> acc + Array.length l) 0 t.levels in
  let cursor_elements = Array.fold_left (fun acc c -> acc + Array.length c) 0 t.cursors in
  let payload_elements =
    match t.payloads with
    | None -> 0
    | Some p -> Array.fold_left (fun acc l -> acc + Array.length l) 0 p
  in
  {
    level_elements;
    cursor_elements;
    payload_elements;
    heap_bytes = 8 * (level_elements + cursor_elements + payload_elements);
  }

let element_count_formula ~n ~fanout ~sample =
  if n <= 1 then n
  else begin
    let h = ref 0 and s = ref 1 in
    while !s < n do
      s := !s * fanout;
      incr h
    done;
    (* ⌈log_f n⌉·n sorted elements plus (⌈log_f n⌉−1)·n·f/k cursor entries;
       the paper counts the base level separately, we fold it in: levels
       0..h hold (h+1)·n elements of which h·n are sorted copies. *)
    ((!h + 1) * n) + if sample = 0 then 0 else !h * n * fanout / max 1 sample
  end
