(* The 32-bit instantiation of the merge sort tree (§5.1). The query logic
   deliberately mirrors Mst's descent — this is the second instantiation of
   the paper's per-integer-width template, specialised on int32 bigarrays. *)

type ba = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n : int;
  fanout : int;
  sample : int;
  levels : ba array;
  cursors : ba array;
  stride : int array;
  spr : int array;
}

let get (a : ba) i = Int32.to_int (Bigarray.Array1.unsafe_get a i)

let to_ba (src : int array) =
  let n = Array.length src in
  let a = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout n in
  for i = 0 to n - 1 do
    let v = src.(i) in
    if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
      invalid_arg "Mst_compact.of_mst: value exceeds 32-bit range";
    Bigarray.Array1.unsafe_set a i (Int32.of_int v)
  done;
  a

let of_mst mst =
  let ir = Mst.internals mst in
  {
    n = Mst.length mst;
    fanout = Mst.fanout mst;
    sample = Mst.sample mst;
    levels = Array.map to_ba ir.Mst.int_levels;
    cursors = Array.map to_ba ir.Mst.int_cursors;
    stride = ir.Mst.strides;
    spr = ir.Mst.states_per_run;
  }

let length t = t.n

let heap_bytes t =
  let dim (a : ba) = Bigarray.Array1.dim a in
  4
  * (Array.fold_left (fun acc a -> acc + dim a) 0 t.levels
    + Array.fold_left (fun acc a -> acc + dim a) 0 t.cursors)

(* lower_bound over a sorted bigarray segment *)
let lower_bound (a : ba) ~lo ~hi x =
  let lo = ref lo and len = ref (hi - lo) in
  while !len > 0 do
    let half = !len / 2 in
    let mid = !lo + half in
    if get a mid < x then begin
      lo := mid + 1;
      len := !len - half - 1
    end
    else len := half
  done;
  !lo

let child_position t j run_base pos less_than c ~child_base ~child_len =
  let below = t.levels.(j - 1) in
  if t.sample = 0 then lower_bound below ~lo:child_base ~hi:(child_base + child_len) less_than - child_base
  else begin
    let k = t.sample in
    let s = pos / k * k in
    let run_idx = run_base / t.stride.(j) in
    let sbase = ((run_idx * t.spr.(j - 1)) + (s / k)) * t.fanout in
    let off = get t.cursors.(j - 1) (sbase + c) in
    let whi = min (off + (pos - s)) child_len in
    lower_bound below ~lo:(child_base + off) ~hi:(child_base + whi) less_than - child_base
  end

let rec descend_count t j run_base run_len pos lo hi less_than =
  let lc = t.stride.(j - 1) in
  let nc = ((run_len - 1) / lc) + 1 in
  let cpos c ~child_base ~child_len = child_position t j run_base pos less_than c ~child_base ~child_len in
  let c_first = if lo <= run_base then 0 else (lo - run_base) / lc in
  let c_last = if hi >= run_base + run_len then nc - 1 else (hi - 1 - run_base) / lc in
  let inside = c_last - c_first + 1 in
  let contrib cp ~child_base ~child_len =
    if lo <= child_base && child_base + child_len <= hi then cp
    else descend_count t (j - 1) child_base child_len cp lo hi less_than
  in
  if 2 * inside <= nc + 2 then begin
    let acc = ref 0 in
    for c = c_first to c_last do
      let child_base = run_base + (c * lc) in
      let child_len = min lc (run_len - (c * lc)) in
      acc := !acc + contrib (cpos c ~child_base ~child_len) ~child_base ~child_len
    done;
    !acc
  end
  else begin
    let acc = ref pos in
    for c = 0 to c_first - 1 do
      let child_base = run_base + (c * lc) in
      let child_len = min lc (run_len - (c * lc)) in
      acc := !acc - cpos c ~child_base ~child_len
    done;
    for c = c_last + 1 to nc - 1 do
      let child_base = run_base + (c * lc) in
      let child_len = min lc (run_len - (c * lc)) in
      acc := !acc - cpos c ~child_base ~child_len
    done;
    let fix c =
      let child_base = run_base + (c * lc) in
      let child_len = min lc (run_len - (c * lc)) in
      if not (lo <= child_base && child_base + child_len <= hi) then begin
        let cp = cpos c ~child_base ~child_len in
        acc := !acc - cp + descend_count t (j - 1) child_base child_len cp lo hi less_than
      end
    in
    fix c_first;
    if c_last <> c_first then fix c_last;
    !acc
  end

let count t ~lo ~hi ~less_than =
  let lo = max lo 0 and hi = min hi t.n in
  if lo >= hi then 0
  else begin
    let h = Array.length t.levels - 1 in
    let pos = lower_bound t.levels.(h) ~lo:0 ~hi:t.n less_than in
    if lo = 0 && hi = t.n then pos else descend_count t h 0 t.n pos lo hi less_than
  end

let count_ranges t ~ranges ~less_than =
  Array.fold_left (fun acc (lo, hi) -> acc + count t ~lo ~hi ~less_than) 0 ranges

let count_value_ranges t ~ranges =
  if t.n = 0 then 0
  else begin
    let h = Array.length t.levels - 1 in
    let top = t.levels.(h) in
    Array.fold_left
      (fun acc (vlo, vhi) ->
        acc + lower_bound top ~lo:0 ~hi:t.n vhi - lower_bound top ~lo:0 ~hi:t.n vlo)
      0 ranges
  end

let rec descend_select t j run_base run_len (ranges : (int * int) array) bounds m =
  if j = 0 then begin
    assert (m = 0);
    get t.levels.(0) run_base
  end
  else begin
    let child_stride = t.stride.(j - 1) in
    let nc = ((run_len - 1) / child_stride) + 1 in
    let nr = Array.length ranges in
    let child_bounds = Array.make (2 * nr) 0 in
    let m = ref m in
    let result = ref 0 in
    let found = ref false in
    let c = ref 0 in
    while not !found do
      assert (!c < nc);
      let child_base = run_base + (!c * child_stride) in
      let child_len = min child_stride (run_len - (!c * child_stride)) in
      let qual = ref 0 in
      for b = 0 to (2 * nr) - 1 do
        let v = if b land 1 = 0 then fst ranges.(b / 2) else snd ranges.(b / 2) in
        child_bounds.(b) <- child_position t j run_base bounds.(b) v !c ~child_base ~child_len;
        if b land 1 = 1 then qual := !qual + child_bounds.(b) - child_bounds.(b - 1)
      done;
      if !m < !qual then begin
        result := descend_select t (j - 1) child_base child_len ranges child_bounds !m;
        found := true
      end
      else begin
        m := !m - !qual;
        incr c
      end
    done;
    !result
  end

let select t ~ranges ~nth =
  let total = count_value_ranges t ~ranges in
  if nth < 0 || nth >= total then
    invalid_arg
      (Printf.sprintf "Mst_compact.select: nth=%d out of bounds (%d qualifying)" nth total);
  let h = Array.length t.levels - 1 in
  let top = t.levels.(h) in
  let nr = Array.length ranges in
  let bounds = Array.make (2 * nr) 0 in
  for r = 0 to nr - 1 do
    let vlo, vhi = ranges.(r) in
    bounds.(2 * r) <- lower_bound top ~lo:0 ~hi:t.n vlo;
    bounds.((2 * r) + 1) <- lower_bound top ~lo:0 ~hi:t.n vhi
  done;
  descend_select t h 0 t.n ranges bounds nth
