module Bitset = Holistic_util.Bitset

let type_name c =
  match Column.data c with
  | Column.Ints _ -> "int"
  | Column.Floats _ -> "float"
  | Column.Strings _ -> "string"
  | Column.Bools _ -> "bool"
  | Column.Dates _ -> "date"

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  if needs_quoting s then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let cell c i =
  if Column.is_null c i then ""
  else
    match Column.data c with
    | Column.Ints a -> string_of_int a.(i)
    | Column.Floats a -> Printf.sprintf "%.17g" a.(i)
    | Column.Strings a -> quote a.(i)
    | Column.Bools a -> if a.(i) then "true" else "false"
    | Column.Dates a -> Value.date_to_string a.(i)

let write out table =
  let cols = Table.columns table in
  output_string out
    (String.concat "," (List.map (fun (name, c) -> quote (name ^ ":" ^ type_name c)) cols));
  output_char out '\n';
  for i = 0 to Table.nrows table - 1 do
    output_string out (String.concat "," (List.map (fun (_, c) -> cell c i) cols));
    output_char out '\n'
  done

(* parse all records of a CSV document, respecting quoted fields (which may
   contain commas, quotes and newlines) *)
let parse_records src =
  let n = String.length src in
  let records = ref [] in
  let fields = ref [] in
  let b = Buffer.create 16 in
  let i = ref 0 in
  let in_quotes = ref false in
  let field_pending = ref false in
  let end_field () =
    fields := Buffer.contents b :: !fields;
    Buffer.clear b;
    field_pending := false
  in
  let end_record () =
    (* skip records that are entirely empty (blank lines) *)
    if !fields <> [] || Buffer.length b > 0 || !field_pending then begin
      end_field ();
      records := List.rev !fields :: !records;
      fields := []
    end
  in
  while !i < n do
    let c = src.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && src.[!i + 1] = '"' then begin
          Buffer.add_char b '"';
          incr i
        end
        else in_quotes := false
      else Buffer.add_char b c
    end
    else if c = '"' then begin
      in_quotes := true;
      field_pending := true
    end
    else if c = ',' then begin
      end_field ();
      field_pending := true
    end
    else if c = '\n' then end_record ()
    else if c <> '\r' then Buffer.add_char b c;
    incr i
  done;
  if !in_quotes then failwith "Csv: unterminated quoted field";
  end_record ();
  List.rev !records

let parse_date s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> Value.date_of_ymd (int_of_string y) (int_of_string m) (int_of_string d)
  | _ -> failwith ("Csv: malformed date " ^ s)

let read inc =
  let content = In_channel.input_all inc in
  let header, data_rows =
    match parse_records content with
    | [] -> failwith "Csv: empty input"
    | h :: rest -> (h, rest)
  in
  let schema =
    List.map
      (fun field ->
        match String.rindex_opt field ':' with
        | Some k ->
            (String.sub field 0 k, String.sub field (k + 1) (String.length field - k - 1))
        | None -> failwith ("Csv: header field without type: " ^ field))
      header
  in
  let rows = Array.of_list data_rows in
  let n = Array.length rows in
  let columns =
    List.mapi
      (fun c (name, ty) ->
        let nulls = Bitset.create n in
        let has_null = ref false in
        let field i =
          let row = rows.(i) in
          match List.nth_opt row c with
          | Some "" | None ->
              Bitset.set nulls i;
              has_null := true;
              None
          | Some s -> Some s
        in
        let data =
          match ty with
          | "int" -> Column.Ints (Array.init n (fun i -> match field i with Some s -> int_of_string s | None -> 0))
          | "float" -> Column.Floats (Array.init n (fun i -> match field i with Some s -> float_of_string s | None -> 0.0))
          | "string" -> Column.Strings (Array.init n (fun i -> match field i with Some s -> s | None -> ""))
          | "bool" -> Column.Bools (Array.init n (fun i -> match field i with Some s -> bool_of_string s | None -> false))
          | "date" -> Column.Dates (Array.init n (fun i -> match field i with Some s -> parse_date s | None -> 0))
          | _ -> failwith ("Csv: unknown column type " ^ ty)
        in
        (name, Column.make ?nulls:(if !has_null then Some nulls else None) data))
      schema
  in
  Table.create columns

let save path table =
  let out = open_out path in
  Fun.protect ~finally:(fun () -> close_out out) (fun () -> write out table)

let load path =
  let inc = open_in path in
  Fun.protect ~finally:(fun () -> close_in inc) (fun () -> read inc)
