(** SQL values with SQL-conformant comparison, arithmetic and hashing.

    Dates are days since 1970-01-01; intervals carry calendar months and
    days separately so that ['1 month' preceding] RANGE frames follow
    calendar arithmetic. *)

type interval = { months : int; days : int }

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of int
  | Interval of interval

val is_null : t -> bool

val compare_sql : nulls_last:bool -> t -> t -> int
(** Total order used for sorting: numeric types compare numerically across
    [Int]/[Float], NULLs sort after everything when [nulls_last] (SQL's
    default for ascending order), before otherwise. Distinct types without a
    SQL ordering (e.g. [Bool] vs [String]) fall back to a fixed type rank so
    the order stays total. *)

val equal : t -> t -> bool
(** SQL equality for grouping/distinct purposes: NULL equals NULL here (SQL
    treats NULLs as "not distinct" in grouping), numerics compare across
    widths. *)

val hash : t -> int
(** Hash compatible with {!equal}; used to reduce arbitrary values to
    integers before the prev-occurrence sort (§6.7). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** SQL arithmetic: NULL-propagating, [Int]/[Float] promotion, [Date] ±
    [Interval] and [Date] − [Date] (day count). @raise Invalid_argument on
    type mismatches. *)

val neg : t -> t

val to_string : t -> string

(** Civil-calendar helpers. *)

val date_of_ymd : int -> int -> int -> int
(** [date_of_ymd y m d] is the day count since 1970-01-01 (proleptic
    Gregorian). *)

val ymd_of_date : int -> int * int * int

val date_to_string : int -> string
(** ISO format [YYYY-MM-DD]. *)

val add_months : int -> int -> int
(** [add_months date n] advances [n] calendar months, clamping the day of
    month (Jan 31 + 1 month = Feb 28/29), SQL style. *)
