type t =
  | Col of string
  | Const of Value.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Neg of t
  | Eq of t * t
  | Ne of t * t
  | Lt of t * t
  | Le of t * t
  | Gt of t * t
  | Ge of t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | Is_not_null of t
  | Case of (t * t) list * t option
  | Abs of t
  | Greatest of t list
  | Least of t list

let sql_abs = function
  | Value.Null -> Value.Null
  | Value.Int x -> Value.Int (abs x)
  | Value.Float x -> Value.Float (Float.abs x)
  | _ -> invalid_arg "Expr: abs on non-numeric operand"

(* GREATEST/LEAST ignore NULLs per SQL (NULL only when all are NULL) *)
let sql_extreme keep vs =
  List.fold_left
    (fun acc v ->
      if Value.is_null v then acc
      else if Value.is_null acc then v
      else if keep (Value.compare_sql ~nulls_last:true v acc) then v
      else acc)
    Value.Null vs

let sql_mod a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int _, Value.Int 0 -> Value.Null
  | Value.Int x, Value.Int y -> Value.Int (x mod y)
  | Value.Float x, Value.Float y -> Value.Float (Float.rem x y)
  | Value.Int x, Value.Float y -> Value.Float (Float.rem (float_of_int x) y)
  | Value.Float x, Value.Int y -> Value.Float (Float.rem x (float_of_int y))
  | _ -> invalid_arg "Expr: mod on non-numeric operands"

(* SQL comparison: NULL operands yield NULL. *)
let cmp3 op a b =
  if Value.is_null a || Value.is_null b then Value.Null
  else Value.Bool (op (Value.compare_sql ~nulls_last:true a b) 0)

(* three-valued AND/OR *)
let sql_and a b =
  match a, b with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Bool true, Value.Bool true -> Value.Bool true
  | _ -> Value.Null

let sql_or a b =
  match a, b with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Bool false, Value.Bool false -> Value.Bool false
  | _ -> Value.Null

let sql_not = function
  | Value.Bool b -> Value.Bool (not b)
  | Value.Null -> Value.Null
  | _ -> invalid_arg "Expr: NOT on non-boolean"

let rec compile table e =
  match e with
  | Col name ->
      let c = Table.column table name in
      fun i -> Column.get c i
  | Const v -> fun _ -> v
  | Add (a, b) -> bin table Value.add a b
  | Sub (a, b) -> bin table Value.sub a b
  | Mul (a, b) -> bin table Value.mul a b
  | Div (a, b) -> bin table Value.div a b
  | Mod (a, b) -> bin table sql_mod a b
  | Neg a ->
      let fa = compile table a in
      fun i -> Value.neg (fa i)
  | Eq (a, b) -> bin table (cmp3 ( = )) a b
  | Ne (a, b) -> bin table (cmp3 ( <> )) a b
  | Lt (a, b) -> bin table (cmp3 ( < )) a b
  | Le (a, b) -> bin table (cmp3 ( <= )) a b
  | Gt (a, b) -> bin table (cmp3 ( > )) a b
  | Ge (a, b) -> bin table (cmp3 ( >= )) a b
  | And (a, b) -> bin table sql_and a b
  | Or (a, b) -> bin table sql_or a b
  | Not a ->
      let fa = compile table a in
      fun i -> sql_not (fa i)
  | Is_null a ->
      let fa = compile table a in
      fun i -> Value.Bool (Value.is_null (fa i))
  | Is_not_null a ->
      let fa = compile table a in
      fun i -> Value.Bool (not (Value.is_null (fa i)))
  | Case (branches, else_) ->
      let compiled =
        List.map (fun (c, v) -> (compile table c, compile table v)) branches
      in
      let felse = Option.map (compile table) else_ in
      fun i ->
        let rec go = function
          | [] -> (match felse with Some f -> f i | None -> Value.Null)
          | (fc, fv) :: rest -> if to_bool_v (fc i) then fv i else go rest
        in
        go compiled
  | Abs a ->
      let fa = compile table a in
      fun i -> sql_abs (fa i)
  | Greatest args ->
      let fs = List.map (compile table) args in
      fun i -> sql_extreme (fun c -> c > 0) (List.map (fun f -> f i) fs)
  | Least args ->
      let fs = List.map (compile table) args in
      fun i -> sql_extreme (fun c -> c < 0) (List.map (fun f -> f i) fs)

and to_bool_v = function
  | Value.Bool b -> b
  | Value.Null -> false
  | _ -> invalid_arg "Expr: CASE condition is not boolean"

and bin table op a b =
  let fa = compile table a and fb = compile table b in
  fun i -> op (fa i) (fb i)

let eval table e i = compile table e i

let to_bool = function
  | Value.Bool b -> b
  | Value.Null -> false
  | _ -> invalid_arg "Expr.to_bool: non-boolean value"

let rec to_string = function
  | Col c -> c
  | Const v -> Value.to_string v
  | Add (a, b) -> infix a "+" b
  | Sub (a, b) -> infix a "-" b
  | Mul (a, b) -> infix a "*" b
  | Div (a, b) -> infix a "/" b
  | Mod (a, b) -> Printf.sprintf "mod(%s, %s)" (to_string a) (to_string b)
  | Neg a -> Printf.sprintf "(-%s)" (to_string a)
  | Eq (a, b) -> infix a "=" b
  | Ne (a, b) -> infix a "<>" b
  | Lt (a, b) -> infix a "<" b
  | Le (a, b) -> infix a "<=" b
  | Gt (a, b) -> infix a ">" b
  | Ge (a, b) -> infix a ">=" b
  | And (a, b) -> infix a "and" b
  | Or (a, b) -> infix a "or" b
  | Not a -> Printf.sprintf "(not %s)" (to_string a)
  | Is_null a -> Printf.sprintf "(%s is null)" (to_string a)
  | Is_not_null a -> Printf.sprintf "(%s is not null)" (to_string a)
  | Case (branches, else_) ->
      Printf.sprintf "(case %s%s end)"
        (String.concat " "
           (List.map
              (fun (c, v) -> Printf.sprintf "when %s then %s" (to_string c) (to_string v))
              branches))
        (match else_ with Some e -> " else " ^ to_string e | None -> "")
  | Abs a -> Printf.sprintf "abs(%s)" (to_string a)
  | Greatest args -> Printf.sprintf "greatest(%s)" (String.concat ", " (List.map to_string args))
  | Least args -> Printf.sprintf "least(%s)" (String.concat ", " (List.map to_string args))

and infix a op b = Printf.sprintf "(%s %s %s)" (to_string a) op (to_string b)
