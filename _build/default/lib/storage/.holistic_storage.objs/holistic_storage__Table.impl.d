lib/storage/table.ml: Array Column List Printf String Value
