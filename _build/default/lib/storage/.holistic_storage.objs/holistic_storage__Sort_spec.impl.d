lib/storage/sort_spec.ml: Column Expr List Table Value
