lib/storage/value.mli:
