lib/storage/sort_spec.mli: Expr Table
