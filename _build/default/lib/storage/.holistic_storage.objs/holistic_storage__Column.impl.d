lib/storage/column.ml: Array Hashtbl Holistic_util Option Value
