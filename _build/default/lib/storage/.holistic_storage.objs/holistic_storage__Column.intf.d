lib/storage/column.mli: Holistic_util Value
