lib/storage/expr.mli: Table Value
