lib/storage/table.mli: Column Value
