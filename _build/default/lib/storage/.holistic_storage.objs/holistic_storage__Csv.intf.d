lib/storage/csv.mli: Table
