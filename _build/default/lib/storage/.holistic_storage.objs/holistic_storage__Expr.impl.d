lib/storage/expr.ml: Column Float List Option Printf String Table Value
