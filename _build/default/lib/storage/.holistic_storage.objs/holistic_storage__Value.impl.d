lib/storage/value.ml: Float Hashtbl Printf
