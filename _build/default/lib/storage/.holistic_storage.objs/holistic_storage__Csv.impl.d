lib/storage/csv.ml: Array Buffer Column Fun Holistic_util In_channel List Printf String Table Value
