(** Scalar expressions over table rows: column references, constants,
    arithmetic, comparison and boolean logic, with SQL NULL propagation and
    three-valued logic. *)

type t =
  | Col of string
  | Const of Value.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Neg of t
  | Eq of t * t
  | Ne of t * t
  | Lt of t * t
  | Le of t * t
  | Gt of t * t
  | Ge of t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | Is_not_null of t
  | Case of (t * t) list * t option
      (** searched CASE: WHEN cond THEN value …, optional ELSE (NULL when
          absent) *)
  | Abs of t
  | Greatest of t list
  | Least of t list

val compile : Table.t -> t -> int -> Value.t
(** [compile table e] resolves column references once and returns a per-row
    evaluator. Comparisons involving NULL yield NULL; [And]/[Or] follow SQL
    three-valued logic. @raise Not_found for unknown columns. *)

val eval : Table.t -> t -> int -> Value.t
(** One-shot evaluation (compile + apply). *)

val to_bool : Value.t -> bool
(** SQL predicate truth: [Bool true] is true; NULL and [Bool false] are
    not. @raise Invalid_argument for non-boolean non-NULL values. *)

val to_string : t -> string
