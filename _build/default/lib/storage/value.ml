type interval = { months : int; days : int }

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of int
  | Interval of interval

let is_null = function Null -> true | _ -> false

let type_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Date _ -> 3
  | String _ -> 4
  | Interval _ -> 5

let compare_non_null a b =
  match a, b with
  | Int x, Int y -> compare x y
  | Float x, Float y -> compare x y
  | Int x, Float y -> compare (float_of_int x) y
  | Float x, Int y -> compare x (float_of_int y)
  | Bool x, Bool y -> compare x y
  | String x, String y -> compare x y
  | Date x, Date y -> compare x y
  | Interval x, Interval y -> compare ((x.months * 31) + x.days) ((y.months * 31) + y.days)
  | _ -> compare (type_rank a) (type_rank b)

let compare_sql ~nulls_last a b =
  match a, b with
  | Null, Null -> 0
  | Null, _ -> if nulls_last then 1 else -1
  | _, Null -> if nulls_last then -1 else 1
  | _ -> compare_non_null a b

let equal a b =
  match a, b with
  | Null, Null -> true
  | Null, _ | _, Null -> false
  | _ -> compare_non_null a b = 0

let hash = function
  | Null -> 0x6e756c6c
  | Bool b -> Hashtbl.hash (1, b)
  | Int i -> Hashtbl.hash (2, float_of_int i)
  | Float f ->
      (* hash integral floats like the equal Int so that [equal]-compatible *)
      if Float.is_integer f && Float.abs f < 1e18 then Hashtbl.hash (2, f)
      else Hashtbl.hash (2, f)
  | String s -> Hashtbl.hash (3, s)
  | Date d -> Hashtbl.hash (4, d)
  | Interval i -> Hashtbl.hash (5, (i.months * 31) + i.days)

let arith_error op a b =
  invalid_arg (Printf.sprintf "Value.%s: incompatible operands (%d, %d)" op (type_rank a) (type_rank b))

(* --- calendar ------------------------------------------------------- *)

(* Howard Hinnant's civil-calendar algorithms (days_from_civil and back). *)
let date_of_ymd y m d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let ymd_of_date z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

let date_to_string z =
  let y, m, d = ymd_of_date z in
  Printf.sprintf "%04d-%02d-%02d" y m d

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0 then 29 else 28
  | _ -> invalid_arg "days_in_month"

let add_months date n =
  let y, m, d = ymd_of_date date in
  let months = ((y * 12) + (m - 1)) + n in
  let y' = if months >= 0 then months / 12 else (months - 11) / 12 in
  let m' = months - (y' * 12) + 1 in
  let d' = min d (days_in_month y' m') in
  date_of_ymd y' m' d'

(* --- arithmetic ------------------------------------------------------ *)

let add a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (x + y)
  | Float x, Float y -> Float (x +. y)
  | Int x, Float y -> Float (float_of_int x +. y)
  | Float x, Int y -> Float (x +. float_of_int y)
  | Date d, Interval i | Interval i, Date d -> Date (add_months d i.months + i.days)
  | Date d, Int x | Int x, Date d -> Date (d + x)
  | Interval x, Interval y -> Interval { months = x.months + y.months; days = x.days + y.days }
  | _ -> arith_error "add" a b

let sub a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (x - y)
  | Float x, Float y -> Float (x -. y)
  | Int x, Float y -> Float (float_of_int x -. y)
  | Float x, Int y -> Float (x -. float_of_int y)
  | Date d, Interval i -> Date (add_months d (-i.months) - i.days)
  | Date d, Int x -> Date (d - x)
  | Date x, Date y -> Int (x - y)
  | Interval x, Interval y -> Interval { months = x.months - y.months; days = x.days - y.days }
  | _ -> arith_error "sub" a b

let mul a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (x * y)
  | Float x, Float y -> Float (x *. y)
  | Int x, Float y -> Float (float_of_int x *. y)
  | Float x, Int y -> Float (x *. float_of_int y)
  | Interval i, Int x | Int x, Interval i -> Interval { months = i.months * x; days = i.days * x }
  | _ -> arith_error "mul" a b

let div a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int _, Int 0 -> Null
  | Int x, Int y -> Int (x / y)
  | Float x, Float y -> Float (x /. y)
  | Int x, Float y -> Float (float_of_int x /. y)
  | Float x, Int y -> Float (x /. float_of_int y)
  | _ -> arith_error "div" a b

let neg = function
  | Null -> Null
  | Int x -> Int (-x)
  | Float x -> Float (-.x)
  | Interval i -> Interval { months = -i.months; days = -i.days }
  | v -> arith_error "neg" v v

let to_string = function
  | Null -> "NULL"
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | String s -> s
  | Date d -> date_to_string d
  | Interval { months; days } -> Printf.sprintf "%d mons %d days" months days
