(** Typed CSV persistence for tables.

    The header carries column types as [name:type] with
    [type ∈ int | float | string | bool | date]; empty cells are NULL.
    Fields containing commas, quotes or newlines are double-quoted.
    Limitation: an empty string value round-trips as NULL. *)

val write : out_channel -> Table.t -> unit

val read : in_channel -> Table.t
(** @raise Failure on malformed input. *)

val save : string -> Table.t -> unit
val load : string -> Table.t
