(** SQL tokenizer for the window-function subset. *)

type token =
  | Ident of string  (** lowercased; quoted identifiers keep case *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Symbol of string  (** punctuation and operators: ( ) , * + - / < <= = <> >= > . *)
  | Eof

exception Error of string * int  (** message, character offset *)

val tokenize : string -> (token * int) list
(** Tokens with their character offsets; comments ([-- …]) and whitespace
    are skipped. Keywords are returned as [Ident] (the parser matches them
    case-insensitively). @raise Error on malformed input. *)
