exception Error of string * int

type state = { toks : (Lexer.token * int) array; mutable pos : int }

let reserved =
  [ "select"; "from"; "where"; "window"; "as"; "order"; "by"; "partition"; "rows"; "range";
    "groups"; "between"; "and"; "or"; "not"; "unbounded"; "preceding"; "following"; "current";
    "row"; "exclude"; "ties"; "no"; "others"; "filter"; "over"; "distinct"; "ignore"; "respect";
    "nulls"; "is"; "limit"; "asc"; "desc"; "first"; "last"; "group"; "case"; "when"; "then";
    "else"; "end"; "in" ]

let peek st = fst st.toks.(st.pos)
let offset st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let error st msg = raise (Error (msg, offset st))

let accept_symbol st s =
  match peek st with
  | Lexer.Symbol x when x = s ->
      advance st;
      true
  | _ -> false

let expect_symbol st s =
  if not (accept_symbol st s) then error st (Printf.sprintf "expected %S" s)

let accept_kw st kw =
  match peek st with
  | Lexer.Ident x when x = kw ->
      advance st;
      true
  | _ -> false

let expect_kw st kw = if not (accept_kw st kw) then error st (Printf.sprintf "expected %s" (String.uppercase_ascii kw))

let expect_ident st =
  match peek st with
  | Lexer.Ident x when not (List.mem x reserved) ->
      advance st;
      x
  | _ -> error st "expected identifier"

let expect_string st =
  match peek st with
  | Lexer.String_lit s ->
      advance st;
      s
  | _ -> error st "expected string literal"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_or st =
  let lhs = parse_and st in
  if accept_kw st "or" then Ast.Binop ("or", lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept_kw st "and" then Ast.Binop ("and", lhs, parse_and st) else lhs

and parse_not st = if accept_kw st "not" then Ast.Unop ("not", parse_not st) else parse_predicate st

and parse_predicate st =
  let lhs = parse_additive st in
  match peek st with
  | Lexer.Symbol (("<" | "<=" | "=" | "<>" | ">=" | ">") as op) ->
      advance st;
      Ast.Binop (op, lhs, parse_additive st)
  | Lexer.Ident "is" ->
      advance st;
      let negated = accept_kw st "not" in
      expect_kw st "null";
      Ast.Is_null (lhs, negated)
  | Lexer.Ident "between" ->
      advance st;
      let a = parse_additive st in
      expect_kw st "and";
      let b = parse_additive st in
      Ast.Binop ("and", Ast.Binop (">=", lhs, a), Ast.Binop ("<=", lhs, b))
  | Lexer.Ident "in" ->
      advance st;
      parse_in_list st lhs ~negated:false
  | Lexer.Ident "not" when (match fst st.toks.(st.pos + 1) with Lexer.Ident "in" -> true | _ -> false) ->
      advance st;
      advance st;
      parse_in_list st lhs ~negated:true
  | _ -> lhs

(* x IN (a, b, c) desugars to an OR chain of equalities *)
and parse_in_list st lhs ~negated =
  expect_symbol st "(";
  let rec members acc =
    let e = parse_additive st in
    if accept_symbol st "," then members (e :: acc)
    else begin
      expect_symbol st ")";
      List.rev (e :: acc)
    end
  in
  let members = members [] in
  let disjunction =
    List.fold_left
      (fun acc m ->
        let eq = Ast.Binop ("=", lhs, m) in
        match acc with None -> Some eq | Some a -> Some (Ast.Binop ("or", a, eq)))
      None members
  in
  let e = Option.get disjunction in
  if negated then Ast.Unop ("not", e) else e

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lexer.Symbol (("+" | "-") as op) ->
        advance st;
        lhs := Ast.Binop (op, !lhs, parse_multiplicative st)
    | _ -> continue_ := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lexer.Symbol (("*" | "/" | "%") as op) ->
        advance st;
        lhs := Ast.Binop (op, !lhs, parse_unary st)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  if accept_symbol st "-" then Ast.Unop ("-", parse_unary st) else parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.Int_lit v ->
      advance st;
      Ast.Int_lit v
  | Lexer.Float_lit v ->
      advance st;
      Ast.Float_lit v
  | Lexer.String_lit s ->
      advance st;
      Ast.String_lit s
  | Lexer.Symbol "(" ->
      advance st;
      let e = parse_or st in
      expect_symbol st ")";
      e
  | Lexer.Ident "null" ->
      advance st;
      Ast.Null_lit
  | Lexer.Ident "true" ->
      advance st;
      Ast.Bool_lit true
  | Lexer.Ident "false" ->
      advance st;
      Ast.Bool_lit false
  | Lexer.Ident "date" ->
      advance st;
      Ast.Date_lit (expect_string st)
  | Lexer.Ident "interval" ->
      advance st;
      Ast.Interval_lit (expect_string st)
  | Lexer.Ident "case" ->
      advance st;
      let rec branches acc =
        if accept_kw st "when" then begin
          let c = parse_or st in
          expect_kw st "then";
          let v = parse_or st in
          branches ((c, v) :: acc)
        end
        else List.rev acc
      in
      let branches = branches [] in
      if branches = [] then error st "CASE requires at least one WHEN branch";
      let else_ = if accept_kw st "else" then Some (parse_or st) else None in
      expect_kw st "end";
      Ast.Case (branches, else_)
  | Lexer.Ident f when not (List.mem f reserved) ->
      advance st;
      if accept_symbol st "(" then begin
        let args =
          if accept_symbol st ")" then []
          else begin
            let rec go acc =
              let e = parse_or st in
              if accept_symbol st "," then go (e :: acc) else (expect_symbol st ")"; List.rev (e :: acc))
            in
            go []
          end
        in
        Ast.Func (f, args)
      end
      else Ast.Col f
  | _ -> error st "expected expression"

let parse_order_key st =
  let expr = parse_or st in
  let desc = if accept_kw st "desc" then true else (ignore (accept_kw st "asc"); false) in
  let nulls_first =
    if accept_kw st "nulls" then
      if accept_kw st "first" then Some true
      else begin
        expect_kw st "last";
        Some false
      end
    else None
  in
  { Ast.expr; desc; nulls_first }

let parse_order_list st =
  let rec go acc =
    let k = parse_order_key st in
    if accept_symbol st "," then go (k :: acc) else List.rev (k :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Window definitions                                                  *)
(* ------------------------------------------------------------------ *)

let parse_frame_bound st =
  if accept_kw st "unbounded" then
    if accept_kw st "preceding" then Ast.Unbounded_preceding
    else begin
      expect_kw st "following";
      Ast.Unbounded_following
    end
  else if accept_kw st "current" then begin
    expect_kw st "row";
    Ast.Current_row
  end
  else begin
    let e = parse_or st in
    if accept_kw st "preceding" then Ast.Preceding e
    else begin
      expect_kw st "following";
      Ast.Following e
    end
  end

let parse_frame st mode =
  let start_bound, end_bound =
    if accept_kw st "between" then begin
      let s = parse_frame_bound st in
      expect_kw st "and";
      let e = parse_frame_bound st in
      (s, e)
    end
    else (parse_frame_bound st, Ast.Current_row)
  in
  let exclusion =
    if accept_kw st "exclude" then
      if accept_kw st "current" then begin
        expect_kw st "row";
        Ast.Current_row_x
      end
      else if accept_kw st "group" then Ast.Group_x
      else if accept_kw st "ties" then Ast.Ties_x
      else begin
        expect_kw st "no";
        expect_kw st "others";
        Ast.No_others
      end
    else Ast.No_others
  in
  { Ast.mode; start_bound; end_bound; exclusion }

let parse_window_def st =
  let base =
    match peek st with
    | Lexer.Ident x when not (List.mem x reserved) ->
        advance st;
        Some x
    | _ -> None
  in
  let partition_by =
    if accept_kw st "partition" then begin
      expect_kw st "by";
      let rec go acc =
        let e = parse_or st in
        if accept_symbol st "," then go (e :: acc) else List.rev (e :: acc)
      in
      go []
    end
    else []
  in
  let order_by =
    if accept_kw st "order" then begin
      expect_kw st "by";
      parse_order_list st
    end
    else []
  in
  let frame =
    if accept_kw st "rows" then Some (parse_frame st `Rows)
    else if accept_kw st "range" then Some (parse_frame st `Range)
    else if accept_kw st "groups" then Some (parse_frame st `Groups)
    else None
  in
  { Ast.base; partition_by; order_by; frame }

(* ------------------------------------------------------------------ *)
(* Window function calls                                               *)
(* ------------------------------------------------------------------ *)

(* parse "f(...)" where the argument list may carry DISTINCT, '*' and a
   trailing ORDER BY, then the optional IGNORE NULLS / FILTER / OVER tail *)
let parse_call st f =
  expect_symbol st "(";
  let distinct = accept_kw st "distinct" in
  let args, arg_order_by =
    if accept_symbol st ")" then ([], [])
    else if accept_symbol st "*" then begin
      expect_symbol st ")";
      ([ Ast.Col "*" ], [])
    end
    else begin
      let rec go acc =
        if accept_kw st "order" then begin
          expect_kw st "by";
          let keys = parse_order_list st in
          expect_symbol st ")";
          (List.rev acc, keys)
        end
        else begin
          let e = parse_or st in
          if accept_symbol st "," then go (e :: acc)
          else if accept_kw st "order" then begin
            expect_kw st "by";
            let keys = parse_order_list st in
            expect_symbol st ")";
            (List.rev (e :: acc), keys)
          end
          else begin
            expect_symbol st ")";
            (List.rev (e :: acc), [])
          end
        end
      in
      go []
    end
  in
  let from_last =
    if accept_kw st "from" then
      if accept_kw st "last" then true
      else begin
        expect_kw st "first";
        false
      end
    else false
  in
  let ignore_nulls =
    if accept_kw st "ignore" then begin
      expect_kw st "nulls";
      true
    end
    else begin
      if accept_kw st "respect" then expect_kw st "nulls";
      false
    end
  in
  let filter =
    if accept_kw st "filter" then begin
      expect_symbol st "(";
      expect_kw st "where";
      let e = parse_or st in
      expect_symbol st ")";
      Some e
    end
    else None
  in
  if accept_kw st "over" then begin
    let over =
      match peek st with
      | Lexer.Symbol "(" ->
          advance st;
          let w = parse_window_def st in
          expect_symbol st ")";
          w
      | Lexer.Ident name when not (List.mem name reserved) ->
          advance st;
          { Ast.base = Some name; partition_by = []; order_by = []; frame = None }
      | _ -> error st "expected window name or definition after OVER"
    in
    `Window { Ast.func = f; distinct; args; arg_order_by; ignore_nulls; from_last; filter; over }
  end
  else if distinct || arg_order_by <> [] || ignore_nulls || from_last || filter <> None then
    error st "DISTINCT/ORDER BY/IGNORE NULLS/FILTER require an OVER clause"
  else `Expr (Ast.Func (f, args))

(* A select item is either a scalar expression or a top-level window call.
   Try the expression parser first; if the item continues with OVER / FILTER
   / IGNORE NULLS (or used window-only syntax such as DISTINCT inside the
   call), re-parse it as a window call. *)
let parse_select_item st =
  let saved = st.pos in
  let as_window () =
    st.pos <- saved;
    match peek st, fst st.toks.(st.pos + 1) with
    | Lexer.Ident f, Lexer.Symbol "(" when not (List.mem f reserved) ->
        advance st;
        parse_call st f
    | _ -> error st "expected a window function call"
  in
  let value =
    match (try `Ok (parse_or st) with Error _ -> `Retry) with
    | `Ok e -> begin
        match peek st with
        | Lexer.Ident ("over" | "filter" | "ignore" | "respect") -> as_window ()
        | Lexer.Ident "from"
          when (match fst st.toks.(st.pos + 1) with
               | Lexer.Ident ("first" | "last") -> true
               | _ -> false) ->
            as_window ()
        | _ -> `Expr e
      end
    | `Retry -> as_window ()
  in
  let alias = if accept_kw st "as" then Some (expect_ident st) else None in
  { Ast.value; alias }

let parse_query st =
  expect_kw st "select";
  let rec items acc =
    let it = parse_select_item st in
    if accept_symbol st "," then items (it :: acc) else List.rev (it :: acc)
  in
  let select = items [] in
  expect_kw st "from";
  let from = expect_ident st in
  let where = if accept_kw st "where" then Some (parse_or st) else None in
  let windows =
    if accept_kw st "window" then begin
      let rec go acc =
        let name = expect_ident st in
        expect_kw st "as";
        expect_symbol st "(";
        let w = parse_window_def st in
        expect_symbol st ")";
        if accept_symbol st "," then go ((name, w) :: acc) else List.rev ((name, w) :: acc)
      in
      go []
    end
    else []
  in
  let order_by =
    if accept_kw st "order" then begin
      expect_kw st "by";
      parse_order_list st
    end
    else []
  in
  let limit =
    if accept_kw st "limit" then begin
      match peek st with
      | Lexer.Int_lit v ->
          advance st;
          Some v
      | _ -> error st "expected integer after LIMIT"
    end
    else None
  in
  (match peek st with Lexer.Eof -> () | _ -> error st "unexpected trailing input");
  { Ast.select; from; where; windows; order_by; limit }

let make_state src = { toks = Array.of_list (Lexer.tokenize src); pos = 0 }

let parse src =
  try parse_query (make_state src) with Lexer.Error (msg, off) -> raise (Error (msg, off))

let parse_expr src =
  try
    let st = make_state src in
    let e = parse_or st in
    match peek st with
    | Lexer.Eof -> e
    | _ -> error st "unexpected trailing input"
  with Lexer.Error (msg, off) -> raise (Error (msg, off))
