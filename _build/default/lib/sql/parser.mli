(** Recursive-descent parser for the window-function SQL subset.

    Accepts the paper's proposed extensions everywhere the PostgreSQL
    grammar would (§2.4): [DISTINCT] and [ORDER BY] inside any window
    function call, [FILTER (WHERE …)], full frame clauses with [EXCLUDE],
    and named [WINDOW w AS (…)] definitions. *)

exception Error of string * int
(** message, character offset into the source *)

val parse : string -> Ast.query
(** @raise Error on syntax errors. *)

val parse_expr : string -> Ast.expr
(** Parses a standalone scalar expression (for tests and the CLI). *)
