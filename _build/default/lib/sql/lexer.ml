type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Symbol of string
  | Eof

exception Error of string * int

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit tok pos = tokens := (tok, pos) :: !tokens in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  while !pos < n do
    let c = src.[!pos] in
    let start = !pos in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '-' && peek 1 = Some '-' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_ident_start c then begin
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      emit (Ident (String.lowercase_ascii (String.sub src start (!pos - start)))) start
    end
    else if is_digit c then begin
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      let is_float = !pos < n && src.[!pos] = '.' && (match peek 1 with Some d -> is_digit d | None -> false) in
      if is_float then begin
        incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
        emit (Float_lit (float_of_string (String.sub src start (!pos - start)))) start
      end
      else emit (Int_lit (int_of_string (String.sub src start (!pos - start)))) start
    end
    else if c = '\'' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !pos >= n then raise (Error ("unterminated string literal", start));
        if src.[!pos] = '\'' then
          if peek 1 = Some '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2
          end
          else begin
            closed := true;
            incr pos
          end
        else begin
          Buffer.add_char buf src.[!pos];
          incr pos
        end
      done;
      emit (String_lit (Buffer.contents buf)) start
    end
    else if c = '"' then begin
      incr pos;
      let e = try String.index_from src !pos '"' with Not_found -> raise (Error ("unterminated quoted identifier", start)) in
      emit (Ident (String.sub src !pos (e - !pos))) start;
      pos := e + 1
    end
    else begin
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      match two with
      | "<=" | ">=" | "<>" | "!=" ->
          emit (Symbol (if two = "!=" then "<>" else two)) start;
          pos := !pos + 2
      | _ -> (
          match c with
          | '(' | ')' | ',' | '*' | '+' | '-' | '/' | '%' | '<' | '>' | '=' | '.' ->
              emit (Symbol (String.make 1 c)) start;
              incr pos
          | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, start)))
    end
  done;
  List.rev ((Eof, n) :: !tokens)
