lib/sql/sql.ml: Ast Buffer List Parser Planner Printf String
