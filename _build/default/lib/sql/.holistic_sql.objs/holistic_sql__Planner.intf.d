lib/sql/planner.mli: Ast Holistic_parallel Holistic_storage Holistic_window Table
