lib/sql/sql.mli: Ast Holistic_parallel Holistic_storage Holistic_window Table
