lib/sql/ast.ml:
