lib/sql/lexer.mli:
