lib/sql/planner.ml: Array Ast Column Executor Expr Hashtbl Holistic_sort Holistic_storage Holistic_window List Option Printf Sort_spec String Table Value Window_func Window_spec
