(** Abstract syntax for the supported SQL subset: single-table SELECT with
    window functions, including the paper's §2.4 extensions (DISTINCT
    aggregates over windows, function-local ORDER BY, FILTER, frame
    exclusion, named WINDOW clauses). *)

type expr =
  | Col of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Date_lit of string
  | Interval_lit of string
  | Null_lit
  | Bool_lit of bool
  | Unop of string * expr
  | Binop of string * expr * expr
  | Func of string * expr list  (** scalar functions: mod, abs, … *)
  | Is_null of expr * bool  (** [bool] = negated (IS NOT NULL) *)
  | Case of (expr * expr) list * expr option  (** searched CASE WHEN *)

type order_key = { expr : expr; desc : bool; nulls_first : bool option }

type frame_bound =
  | Unbounded_preceding
  | Preceding of expr
  | Current_row
  | Following of expr
  | Unbounded_following

type frame_exclusion = No_others | Current_row_x | Group_x | Ties_x

type frame = {
  mode : [ `Rows | `Range | `Groups ];
  start_bound : frame_bound;
  end_bound : frame_bound;
  exclusion : frame_exclusion;
}

type window = {
  base : string option;  (** references a named window *)
  partition_by : expr list;
  order_by : order_key list;
  frame : frame option;
}

type window_call = {
  func : string;
  distinct : bool;
  args : expr list;
  arg_order_by : order_key list;  (** the function-local ORDER BY (§2.4) *)
  ignore_nulls : bool;
  from_last : bool;  (** NTH_VALUE(…) FROM LAST *)
  filter : expr option;
  over : window;
}

type select_item = { value : [ `Expr of expr | `Window of window_call ]; alias : string option }

type query = {
  select : select_item list;
  from : string;
  where : expr option;
  windows : (string * window) list;  (** WINDOW w AS (…) clauses *)
  order_by : order_key list;  (** final output order *)
  limit : int option;
}
