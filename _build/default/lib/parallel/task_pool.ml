let default_task_size = 20_000

type shared = {
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable pending : int; (* queued or running tasks of the current batch *)
  mutable first_error : exn option;
  mutable stop : bool;
}

type t = { shared : shared; workers : unit Domain.t array; n : int; mutable alive : bool }

let worker_loop shared =
  let rec loop () =
    Mutex.lock shared.mutex;
    while Queue.is_empty shared.queue && not shared.stop do
      Condition.wait shared.work_available shared.mutex
    done;
    if shared.stop && Queue.is_empty shared.queue then Mutex.unlock shared.mutex
    else begin
      let task = Queue.pop shared.queue in
      Mutex.unlock shared.mutex;
      (try task ()
       with e ->
         Mutex.lock shared.mutex;
         if shared.first_error = None then shared.first_error <- Some e;
         Mutex.unlock shared.mutex);
      Mutex.lock shared.mutex;
      shared.pending <- shared.pending - 1;
      if shared.pending = 0 then Condition.broadcast shared.batch_done;
      Mutex.unlock shared.mutex;
      loop ()
    end
  in
  loop ()

let create n =
  if n < 1 then invalid_arg "Task_pool.create";
  let shared =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      first_error = None;
      stop = false;
    }
  in
  let workers =
    if n = 1 then [||]
    else Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop shared))
  in
  { shared; workers; n; alive = true }

let size t = t.n

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    let s = t.shared in
    Mutex.lock s.mutex;
    s.stop <- true;
    Condition.broadcast s.work_available;
    Mutex.unlock s.mutex;
    Array.iter Domain.join t.workers
  end

let run_list_serial tasks =
  let first_error = ref None in
  List.iter
    (fun task ->
      try task () with e -> if !first_error = None then first_error := Some e)
    tasks;
  match !first_error with None -> () | Some e -> raise e

let run_list t tasks =
  if t.n = 1 then run_list_serial tasks
  else begin
    let s = t.shared in
    Mutex.lock s.mutex;
    s.first_error <- None;
    List.iter
      (fun task ->
        s.pending <- s.pending + 1;
        Queue.push task s.queue)
      tasks;
    Condition.broadcast s.work_available;
    (* The caller helps drain the queue instead of blocking idly. *)
    let rec help () =
      if not (Queue.is_empty s.queue) then begin
        let task = Queue.pop s.queue in
        Mutex.unlock s.mutex;
        (try task ()
         with e ->
           Mutex.lock s.mutex;
           if s.first_error = None then s.first_error <- Some e;
           Mutex.unlock s.mutex);
        Mutex.lock s.mutex;
        s.pending <- s.pending - 1;
        if s.pending = 0 then Condition.broadcast s.batch_done;
        help ()
      end
    in
    help ();
    while s.pending > 0 do
      Condition.wait s.batch_done s.mutex
    done;
    let err = s.first_error in
    s.first_error <- None;
    Mutex.unlock s.mutex;
    match err with None -> () | Some e -> raise e
  end

let parallel_for t ~lo ~hi ~chunk f =
  if chunk <= 0 then invalid_arg "Task_pool.parallel_for: chunk must be positive";
  if hi > lo then begin
    let tasks = ref [] in
    let pos = ref lo in
    while !pos < hi do
      let chunk_lo = !pos in
      let chunk_hi = min hi (chunk_lo + chunk) in
      tasks := (fun () -> f chunk_lo chunk_hi) :: !tasks;
      pos := chunk_hi
    done;
    run_list t (List.rev !tasks)
  end

let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create (Domain.recommended_domain_count ()) in
      default_pool := Some p;
      p
