lib/parallel/task_pool.ml: Array Condition Domain List Mutex Queue
