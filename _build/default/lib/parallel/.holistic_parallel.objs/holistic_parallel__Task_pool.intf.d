lib/parallel/task_pool.mli:
