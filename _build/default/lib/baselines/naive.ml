(* In-place quickselect (Hoare) with 3-way partitioning and random-ish pivot
   via median-of-3, used on scratch copies of the frame. *)
let rec quickselect (a : int array) lo hi k =
  if hi - lo <= 1 then a.(lo)
  else begin
    let mid = lo + ((hi - lo) / 2) in
    let x = a.(lo) and y = a.(mid) and z = a.(hi - 1) in
    let p =
      if x < y then if y < z then y else if x < z then z else x
      else if x < z then x
      else if y < z then z
      else y
    in
    let lt = ref lo and i = ref lo and gt = ref hi in
    while !i < !gt do
      let v = a.(!i) in
      if v < p then begin
        a.(!i) <- a.(!lt);
        a.(!lt) <- v;
        incr lt;
        incr i
      end
      else if v > p then begin
        decr gt;
        a.(!i) <- a.(!gt);
        a.(!gt) <- v
      end
      else incr i
    done;
    if k < !lt - lo then quickselect a lo !lt k
    else if k < !gt - lo then p
    else quickselect a !gt hi (k - (!gt - lo))
  end

let covered_length ranges =
  Array.fold_left (fun acc (lo, hi) -> acc + max 0 (hi - lo)) 0 ranges

let select_kth values ~scratch ~ranges ~k =
  let len = ref 0 in
  Array.iter
    (fun (lo, hi) ->
      for i = lo to hi - 1 do
        scratch.(!len) <- values.(i);
        incr len
      done)
    ranges;
  if k < 0 || k >= !len then invalid_arg "Naive.select_kth: k out of bounds";
  quickselect scratch 0 !len k

let count_less values ~ranges ~less_than =
  let acc = ref 0 in
  Array.iter
    (fun (lo, hi) ->
      for i = lo to hi - 1 do
        if values.(i) < less_than then incr acc
      done)
    ranges;
  !acc

let distinct_count values ~ranges =
  let table = Hashtbl.create (max 16 (covered_length ranges)) in
  Array.iter
    (fun (lo, hi) ->
      for i = lo to hi - 1 do
        Hashtbl.replace table values.(i) ()
      done)
    ranges;
  Hashtbl.length table

let distinct_below values ~ranges ~key =
  let table = Hashtbl.create 16 in
  Array.iter
    (fun (lo, hi) ->
      for i = lo to hi - 1 do
        if values.(i) < key then Hashtbl.replace table values.(i) ()
      done)
    ranges;
  Hashtbl.length table
