lib/baselines/incremental.mli:
