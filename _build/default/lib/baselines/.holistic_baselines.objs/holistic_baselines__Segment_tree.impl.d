lib/baselines/segment_tree.ml: Array
