lib/baselines/naive.mli:
