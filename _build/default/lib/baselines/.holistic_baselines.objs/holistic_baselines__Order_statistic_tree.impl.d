lib/baselines/order_statistic_tree.ml: Array Obj Option Printf
