lib/baselines/segment_tree.mli:
