lib/baselines/order_statistic_tree.mli:
