lib/baselines/naive.ml: Array Hashtbl
