lib/baselines/incremental.ml: Array Hashtbl Option
