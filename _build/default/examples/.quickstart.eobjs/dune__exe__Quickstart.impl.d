examples/quickstart.ml: Column Executor Expr Holistic_storage Holistic_window Sort_spec Table Window_func Window_spec
