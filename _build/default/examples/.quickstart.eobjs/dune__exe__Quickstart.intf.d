examples/quickstart.mli:
