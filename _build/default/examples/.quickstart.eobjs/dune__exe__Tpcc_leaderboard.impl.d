examples/tpcc_leaderboard.ml: Column Executor Expr Holistic_data Holistic_storage Holistic_window Printf Sort_spec Table Value Window_func Window_spec
