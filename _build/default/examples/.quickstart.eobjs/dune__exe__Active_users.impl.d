examples/active_users.ml: Array Column Executor Expr Hashtbl Holistic_data Holistic_storage Holistic_window List Printf Sort_spec Sys Table Value Window_func Window_spec
