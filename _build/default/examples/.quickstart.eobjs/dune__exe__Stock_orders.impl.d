examples/stock_orders.ml: Array Column Executor Expr Holistic_data Holistic_storage Holistic_window Printf Sort_spec Sys Table Value Window_func Window_spec
