examples/stock_orders.mli:
