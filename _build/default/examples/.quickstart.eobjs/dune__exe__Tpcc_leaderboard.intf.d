examples/tpcc_leaderboard.mli:
