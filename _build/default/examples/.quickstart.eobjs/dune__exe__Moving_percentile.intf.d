examples/moving_percentile.mli:
