examples/moving_percentile.ml: Array Column Executor Expr Hashtbl Holistic_data Holistic_storage Holistic_window List Option Printf Sort_spec Sys Table Value Window_func Window_spec
