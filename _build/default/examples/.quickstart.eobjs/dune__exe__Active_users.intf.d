examples/active_users.mli:
