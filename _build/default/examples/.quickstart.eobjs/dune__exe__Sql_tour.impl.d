examples/sql_tour.ml: Holistic_data Holistic_sql Holistic_storage Printf String Table
