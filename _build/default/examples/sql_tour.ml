(* A tour of the SQL front end: the paper's proposed syntax extensions
   (§2.4) running end-to-end as actual SQL text.

   Run with: dune exec examples/sql_tour.exe *)

open Holistic_storage
module Sql = Holistic_sql.Sql

let run tables title q =
  Printf.printf "\n-- %s\n%s\n\n" title (String.trim q);
  Table.print ~max_rows:8 (Sql.query ~tables q)

let () =
  let lineitem = Holistic_data.Tpch.lineitem ~rows:20_000 () in
  let tpcc = Holistic_data.Scenarios.tpcc_results ~rows:400 () in
  let tables = [ ("lineitem", lineitem); ("tpcc_results", tpcc) ] in

  run tables "framed DISTINCT aggregate — rejected by SQL:2011, O(n log n) here"
    {|select l_shipdate,
       count(distinct l_partkey) over w as parts_this_week,
       sum(distinct l_quantity) over w as distinct_quantities
     from lineitem
     window w as (order by l_shipdate
                  range between interval '1 week' preceding and current row)
     order by l_shipdate limit 8|};

  run tables "framed percentile with its own ORDER BY (1)"
    {|select l_shipdate,
       percentile_disc(0.99 order by l_receiptdate - l_shipdate) over w as p99_delay,
       percentile_cont(0.5 order by l_extendedprice) over w as median_price
     from lineitem
     window w as (order by l_shipdate rows between 999 preceding and current row)
     order by l_shipdate limit 8|};

  run tables "the flagship leaderboard query (2.4): two independent orders"
    {|select submission_date, dbsystem, tps,
       rank(order by tps desc) over w as rank_back_then,
       first_value(dbsystem order by tps desc) over w as leader,
       lead(tps order by tps desc) over w as next_best,
       count(distinct dbsystem) over w as competitors
     from tpcc_results
     window w as (order by submission_date
                  range between unbounded preceding and current row)
     order by submission_date desc limit 8|};

  run tables "FILTER + frame exclusion + CASE"
    {|select l_shipdate, l_quantity,
       avg(l_extendedprice) filter (where l_quantity > 25) over
         (order by l_shipdate rows between 100 preceding and 100 following
          exclude current row) as peers_avg_price,
       case when l_quantity > 25 then 'bulk' else 'small' end as class
     from lineitem
     order by l_shipdate limit 8|};

  print_endline "\n-- explain output for a framed rank:";
  print_string
    (Sql.explain
       "select rank(order by tps desc) over (order by submission_date \
        groups between 3 preceding and current row exclude ties) from tpcc_results")
