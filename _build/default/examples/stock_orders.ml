(* The paper's §2.2 stock-market example: frame bounds that are *per-row
   expressions*, producing non-monotonic window frames.

     select price > median(price) over (
         order by placement_time
         range between current row and good_for following)
     from stock_orders

   Each limit order is compared with the median of all orders placed during
   its own validity interval. Incremental algorithms degrade to O(n²) on
   such frames (§6.5); the merge sort tree does not rely on frame overlap
   and stays O(n log n).

   Run with: dune exec examples/stock_orders.exe -- [rows] *)

open Holistic_storage
open Holistic_window
module Wf = Window_func

let () =
  let rows = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 20_000 in
  let table = Holistic_data.Scenarios.stock_orders ~rows () in
  let over =
    Window_spec.over
      ~order_by:[ Sort_spec.asc (Expr.Col "placement_time") ]
      ~frame:
        (Window_spec.range_between Window_spec.Current_row
           (Window_spec.Following (Expr.Col "good_for")))
      ()
  in
  let result =
    Executor.run table ~over
      [
        Wf.median ~name:"median_while_valid" (Expr.Col "price");
        Wf.count_star ~name:"concurrent_orders" ();
      ]
  in
  let price = Table.column result "price" in
  let med = Table.column result "median_while_valid" in
  let cnt = Table.column result "concurrent_orders" in
  let favorable = ref 0 and total = ref 0 and windows = ref 0 in
  for i = 0 to Table.nrows result - 1 do
    match Column.get price i, Column.get med i, Column.get cnt i with
    | Value.Float p, Value.Float m, Value.Int c ->
        incr total;
        windows := !windows + c;
        if p > m then incr favorable
    | _ -> ()
  done;
  Printf.printf "Analysed %d limit orders with per-row validity windows.\n" !total;
  Printf.printf "Average orders live during a validity window: %.1f\n"
    (float_of_int !windows /. float_of_int !total);
  Printf.printf "Orders priced above the median of their validity window: %d (%.1f%%)\n" !favorable
    (100.0 *. float_of_int !favorable /. float_of_int !total);
  print_newline ();
  print_endline "First rows:";
  Table.print ~max_rows:8 result
