(* The paper's §1 delivery-time question: "What is the 99th percentile
   worst-case delivery time of a product — and how does it change over
   time?"

     select l_shipdate,
            percentile_disc(0.99, order by l_receiptdate - l_shipdate) over w
     from lineitem
     window w as (order by l_shipdate
                  range between '1 week' preceding and current row)

   SQL:2011 forbids framing percentile_disc; this engine evaluates it with a
   merge sort tree in O(n log n).

   Run with: dune exec examples/moving_percentile.exe -- [rows] *)

open Holistic_storage
open Holistic_window
module Wf = Window_func

let () =
  let rows = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 50_000 in
  let table = Holistic_data.Tpch.lineitem ~rows () in
  let delivery_delay = Expr.(Sub (Col "l_receiptdate", Col "l_shipdate")) in
  let one_week = Expr.Const (Value.Interval { months = 0; days = 7 }) in
  let over =
    Window_spec.over
      ~order_by:[ Sort_spec.asc (Expr.Col "l_shipdate") ]
      ~frame:(Window_spec.range_between (Window_spec.Preceding one_week) Window_spec.Current_row)
      ()
  in
  let result =
    Executor.run table ~over
      [
        Wf.percentile_disc ~name:"p99_delay_days" 0.99 [ Sort_spec.asc delivery_delay ];
        Wf.median ~name:"median_delay_days" delivery_delay;
        Wf.count_star ~name:"shipments_in_window" ();
      ]
  in
  (* Summarise the moving p99 by year. *)
  let ship = Table.column result "l_shipdate" in
  let p99 = Table.column result "p99_delay_days" in
  let med = Table.column result "median_delay_days" in
  let per_year = Hashtbl.create 8 in
  for i = 0 to Table.nrows result - 1 do
    match Column.get ship i, Column.get p99 i, Column.get med i with
    | Value.Date d, Value.Int p, Value.Int m ->
        let y, _, _ = Value.ymd_of_date d in
        let sum_p, sum_m, cnt = Option.value (Hashtbl.find_opt per_year y) ~default:(0, 0, 0) in
        Hashtbl.replace per_year y (sum_p + p, sum_m + m, cnt + 1)
    | _ -> ()
  done;
  Printf.printf "Trailing-week delivery delays over %d lineitems (averages per ship year):\n" rows;
  Printf.printf "%6s %22s %24s\n" "year" "avg moving p99 (days)" "avg moving median (days)";
  List.iter
    (fun (y, (sp, sm, c)) ->
      Printf.printf "%6d %22.2f %24.2f\n" y
        (float_of_int sp /. float_of_int c)
        (float_of_int sm /. float_of_int c))
    (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_year []))
