(* Quickstart: build a table, compute a moving median and a framed distinct
   count through the window operator.

   Run with: dune exec examples/quickstart.exe *)

open Holistic_storage
open Holistic_window
module Wf = Window_func

let () =
  (* A tiny sensor log: timestamps, readings, device ids. *)
  let table =
    Table.create
      [
        ("ts", Column.ints [| 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 |]);
        ("reading", Column.floats [| 5.0; 9.0; 7.0; 8.0; 30.0; 7.5; 8.5; 6.0; 7.0; 9.0 |]);
        ("device", Column.ints [| 1; 2; 1; 2; 1; 2; 1; 2; 1; 2 |]);
      ]
  in
  (* OVER (ORDER BY ts ROWS BETWEEN 4 PRECEDING AND CURRENT ROW) *)
  let over =
    Window_spec.over
      ~order_by:[ Sort_spec.asc (Expr.Col "ts") ]
      ~frame:(Window_spec.rows_between (Window_spec.preceding 4) Window_spec.Current_row)
      ()
  in
  let result =
    Executor.run table ~over
      [
        (* median(reading) OVER w — a framed holistic aggregate, the paper's
           headline capability *)
        Wf.median ~name:"moving_median" (Expr.Col "reading");
        (* count(DISTINCT device) OVER w *)
        Wf.count ~distinct:true ~name:"devices_in_window" (Expr.Col "device");
        (* rank(ORDER BY reading DESC) OVER w — a framed rank with its own
           ORDER BY, the paper's proposed SQL extension *)
        Wf.rank ~name:"rank_in_window" [ Sort_spec.desc (Expr.Col "reading") ];
      ]
  in
  print_endline "Moving statistics over the last 5 readings:";
  Table.print result
