(* The paper's §1 opening question: "How many monthly-active users do we
   have — and how did that change over time?"

     select o_orderdate, count(distinct o_custkey) over w
     from orders
     window w as (order by o_orderdate
                  range between '1 month' preceding and current row)

   SQL:2011 explicitly disallows DISTINCT aggregates as window functions;
   this engine evaluates them with a merge sort tree over prev-occurrence
   back-references (§4.2).

   Run with: dune exec examples/active_users.exe -- [rows] *)

open Holistic_storage
open Holistic_window
module Wf = Window_func

let () =
  let rows = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 100_000 in
  let table = Holistic_data.Tpch.orders ~rows () in
  let one_month = Expr.Const (Value.Interval { months = 1; days = 0 }) in
  let over =
    Window_spec.over
      ~order_by:[ Sort_spec.asc (Expr.Col "o_orderdate") ]
      ~frame:(Window_spec.range_between (Window_spec.Preceding one_month) Window_spec.Current_row)
      ()
  in
  let result =
    Executor.run table ~over
      [
        Wf.count ~distinct:true ~name:"monthly_active_customers" (Expr.Col "o_custkey");
        Wf.count_star ~name:"monthly_orders" ();
      ]
  in
  (* Report the trailing-month active-customer count on the first order date
     of each half year. *)
  let dates = Table.column result "o_orderdate" in
  let mac = Table.column result "monthly_active_customers" in
  let ord = Table.column result "monthly_orders" in
  let best = Hashtbl.create 16 in
  for i = 0 to Table.nrows result - 1 do
    match Column.get dates i with
    | Value.Date d ->
        let y, m, _ = Value.ymd_of_date d in
        let key = (y, (m - 1) / 6) in
        let replace =
          match Hashtbl.find_opt best key with Some (d0, _) -> d > d0 | None -> true
        in
        if replace then Hashtbl.replace best key (d, i)
      | _ -> ()
  done;
  Printf.printf "Trailing-month activity over %d orders (sampled at each half-year end):\n" rows;
  Printf.printf "%-12s %26s %16s\n" "date" "monthly_active_customers" "monthly_orders";
  List.iter
    (fun (_, (d, i)) ->
      Printf.printf "%-12s %26s %16s\n" (Value.date_to_string d)
        (Value.to_string (Column.get mac i))
        (Value.to_string (Column.get ord i)))
    (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) best []))
