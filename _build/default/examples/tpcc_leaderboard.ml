(* The paper's §2.4 motivating query: judge each historical TPC-C submission
   against all *previous* submissions only.

     select dbsystem, tps,
            count(distinct dbsystem) over w,
            rank(order by tps desc) over w,
            first_value(tps order by tps desc) over w,
            first_value(dbsystem order by tps desc) over w,
            lead(tps order by tps desc) over w
     from tpcc_results
     window w as (order by submission_date
                  range between unbounded preceding and current row)

   Every one of these framed holistic functions is rejected by SQL:2011;
   with merge sort trees they all run in O(n log n).

   Run with: dune exec examples/tpcc_leaderboard.exe *)

open Holistic_storage
open Holistic_window
module Wf = Window_func

let () =
  let table = Holistic_data.Scenarios.tpcc_results ~rows:1_000 () in
  let by_tps_desc = [ Sort_spec.desc (Expr.Col "tps") ] in
  let over =
    Window_spec.over
      ~order_by:[ Sort_spec.asc (Expr.Col "submission_date") ]
      ~frame:(Window_spec.range_between Window_spec.Unbounded_preceding Window_spec.Current_row)
      ()
  in
  let result =
    Executor.run table ~over
      [
        Wf.count ~distinct:true ~name:"competing_systems" (Expr.Col "dbsystem");
        Wf.rank ~name:"rank_back_then" by_tps_desc;
        Wf.first_value ~order:by_tps_desc ~name:"best_tps_back_then" (Expr.Col "tps");
        Wf.first_value ~order:by_tps_desc ~name:"leader_back_then" (Expr.Col "dbsystem");
        Wf.lead ~order:by_tps_desc ~name:"next_best_tps" (Expr.Col "tps");
      ]
  in
  (* Show the submissions that were #1 at the time they were published. *)
  let rank = Table.column result "rank_back_then" in
  let n = Table.nrows result in
  let champions = ref 0 in
  print_endline "Submissions that topped the leaderboard on their submission date:";
  Printf.printf "%-12s %-10s %12s %18s %14s\n" "date" "system" "tps" "competing_systems" "next_best_tps";
  for i = 0 to n - 1 do
    if Column.get rank i = Value.Int 1 && !champions < 15 then begin
      incr champions;
      let cell c = Value.to_string (Column.get (Table.column result c) i) in
      Printf.printf "%-12s %-10s %12s %18s %14s\n" (cell "submission_date") (cell "dbsystem")
        (cell "tps") (cell "competing_systems") (cell "next_best_tps")
    end
  done;
  Printf.printf "\n(%d rows analysed; every row was ranked only against earlier submissions.)\n" n
