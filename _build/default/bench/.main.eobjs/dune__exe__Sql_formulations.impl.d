bench/sql_formulations.ml: Array Column Holistic_baselines Holistic_sort Holistic_storage Holistic_util Table Value
