bench/profile.ml: Array Column Harness Holistic_core Holistic_data Holistic_parallel Holistic_sort Holistic_storage Holistic_util List Printf String Table Unix
