bench/micro.ml: Analyze Array Bechamel Benchmark Harness Hashtbl Holistic_baselines Holistic_core Holistic_data Instance Lazy List Measure Printf Staged Test Time Toolkit
