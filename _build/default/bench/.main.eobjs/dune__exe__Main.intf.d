bench/main.mli:
