bench/main.ml: Arg Cmd Cmdliner Figures Harness List Micro Printf Profile String Term Unix
