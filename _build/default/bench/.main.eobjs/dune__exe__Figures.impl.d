bench/figures.ml: Array Column Executor Expr Harness Holistic_core Holistic_data Holistic_storage Holistic_window List Printf Sort_spec Sql_formulations Table Value Window_func Window_spec
