bench/harness.ml: Gc List Printf String Unix
