(* The "traditional SQL" formulations of a framed median (paper §6.2) and a
   stand-in for Tableau's client-side implementation. The paper observes
   that all tested systems execute both rewritings as O(n²) nested-loop
   plans; these implementations reproduce those plan shapes.

   The query under test:

     select percentile_disc(0.5 order by l_extendedprice) over
       (order by l_shipdate rows between 999 preceding and current row)
     from lineitem *)

open Holistic_storage
module Naive = Holistic_baselines.Naive
module Inc = Holistic_baselines.Incremental
module Introsort = Holistic_sort.Introsort

(* shared preparation: number the rows by l_shipdate (the WITH lineitem_rn
   CTE) and extract the prices in rn order *)
let prepare table =
  let n = Table.nrows table in
  let ship =
    match Column.data (Table.column table "l_shipdate") with
    | Column.Dates d -> d
    | _ -> invalid_arg "expected date column"
  in
  let price =
    match Column.data (Table.column table "l_extendedprice") with
    | Column.Floats p -> p
    | _ -> invalid_arg "expected float column"
  in
  let key = Array.copy ship in
  let idx = Array.init n (fun i -> i) in
  Introsort.sort_pairs ~key ~payload:idx;
  (* prices in rn (ship-date) order, as integer cents for exact medians *)
  Array.map (fun i -> int_of_float (price.(i) *. 100.0)) idx

(* Correlated subquery: for every outer row, the inner subquery re-scans the
   whole CTE to find rows with l2.rn between l1.rn-999 and l1.rn, then
   aggregates them — a nested-loop dependent join. *)
let correlated_subquery prices ~frame_rows =
  let n = Array.length prices in
  let out = Array.make n 0 in
  let scratch = Array.make n 0 in
  for rn1 = 0 to n - 1 do
    (* inner plan: full scan with a predicate on rn *)
    let len = ref 0 in
    for rn2 = 0 to n - 1 do
      if rn2 >= rn1 - (frame_rows - 1) && rn2 <= rn1 then begin
        scratch.(!len) <- prices.(rn2);
        incr len
      end
    done;
    (* percentile_disc(0.5) within group: sort the group, index it *)
    Introsort.sort_range scratch ~lo:0 ~hi:!len;
    out.(rn1) <- scratch.(((!len + 1) / 2) - 1)
  done;
  out

(* Self-join: the nested-loop band join l1 ⋈ l2 materialises every matching
   (l1.rn, l2.price) pair; a grouped aggregation on l1.rn then computes one
   percentile per group — the same O(n²) probe work plus O(n·w)
   materialisation into per-group buffers. *)
let self_join prices ~frame_rows =
  let n = Array.length prices in
  let join_rn = Holistic_util.Int_vec.create ~capacity:(n * 4) () in
  let join_price = Holistic_util.Int_vec.create ~capacity:(n * 4) () in
  for rn1 = 0 to n - 1 do
    for rn2 = 0 to n - 1 do
      (* band predicate evaluated on every pair: the nested-loop join *)
      if rn2 >= rn1 - (frame_rows - 1) && rn2 <= rn1 then begin
        Holistic_util.Int_vec.push join_rn rn1;
        Holistic_util.Int_vec.push join_price prices.(rn2)
      end
    done
  done;
  (* grouped aggregation over the materialised join result *)
  let npairs = Holistic_util.Int_vec.length join_rn in
  let group_size = Array.make n 0 in
  for p = 0 to npairs - 1 do
    let g = Holistic_util.Int_vec.get join_rn p in
    group_size.(g) <- group_size.(g) + 1
  done;
  let offsets = Array.make (n + 1) 0 in
  for g = 0 to n - 1 do
    offsets.(g + 1) <- offsets.(g) + group_size.(g)
  done;
  let grouped = Array.make npairs 0 in
  let cursor = Array.copy offsets in
  for p = 0 to npairs - 1 do
    let g = Holistic_util.Int_vec.get join_rn p in
    grouped.(cursor.(g)) <- Holistic_util.Int_vec.get join_price p;
    cursor.(g) <- cursor.(g) + 1
  done;
  Array.init n (fun g ->
      let lo = offsets.(g) and hi = offsets.(g + 1) in
      Introsort.sort_range grouped ~lo ~hi;
      grouped.(lo + (((hi - lo + 1) / 2) - 1)))

(* Tableau-style client-side evaluation: the WINDOW_PERCENTILE table
   calculation is Wesley & Xu's single-threaded sorted-window algorithm, but
   it runs in an application-layer interpreter over dynamically-typed
   values. We model that faithfully: the window state holds boxed [Value.t]s
   and every comparison dispatches through the generic SQL comparator, like
   an expression interpreter — no columnar unboxing, no parallelism. *)
let client_side prices ~frame_rows =
  let n = Array.length prices in
  let boxed = Array.map (fun p -> Value.Int p) prices in
  let out = Array.make n 0 in
  let window = Array.make n Value.Null in
  let size = ref 0 in
  let position v =
    let lo = ref 0 and hi = ref !size in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Value.compare_sql ~nulls_last:true window.(mid) v < 0 then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let add v =
    let p = position v in
    Array.blit window p window (p + 1) (!size - p);
    window.(p) <- v;
    incr size
  in
  let remove v =
    let p = position v in
    Array.blit window (p + 1) window p (!size - p - 1);
    decr size
  in
  Inc.Frame_driver.run ~n
    ~frame:(fun i -> (i - (frame_rows - 1), i + 1))
    ~add:(fun j -> add boxed.(j))
    ~remove:(fun j -> remove boxed.(j))
    ~result:(fun i ->
      match window.(((!size + 1) / 2) - 1) with
      | Value.Int p -> out.(i) <- p
      | _ -> assert false)
    ~reset:(fun () -> size := 0)
    ~lo:0 ~hi:n;
  out

(* reference check used by the bench self-test *)
let oracle prices ~frame_rows =
  let n = Array.length prices in
  let scratch = Array.make n 0 in
  Array.init n (fun i ->
      let lo = max 0 (i - (frame_rows - 1)) in
      let len = i + 1 - lo in
      Naive.select_kth prices ~scratch ~ranges:[| (lo, i + 1) |] ~k:(((len + 1) / 2) - 1))
