(* Shared benchmark machinery: wall-clock timing with stop-loss sweeps and
   aligned table output. All experiments print absolute numbers plus the
   derived series the paper plots, so EXPERIMENTS.md can quote them
   directly. *)

let now () = Unix.gettimeofday ()

type outcome = Time of float | Skipped

(* Budget (seconds) after which a sweep stops running an algorithm: the
   competitor is declared off-scale, as in the paper's plots where the
   quadratic algorithms hug zero. *)
let default_budget = ref 30.0

let time f =
  let t0 = now () in
  let _ = f () in
  now () -. t0

let time_best ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t = time f in
    if t < !best then best := t
  done;
  !best

let gc_settle () =
  Gc.full_major ();
  Gc.compact ()

(* Sweep one algorithm across parameter points, stopping once a point
   exceeds the budget. The heap is settled before each point so one point's
   garbage is not billed to the next. *)
let sweep ~points ~run =
  let stopped = ref false in
  List.map
    (fun p ->
      if !stopped then (p, Skipped)
      else begin
        gc_settle ();
        let t = run p in
        if t > !default_budget then stopped := true;
        (p, Time t)
      end)
    points

let throughput_cell ~n = function
  | Skipped -> "-"
  | Time t -> Printf.sprintf "%.3g" (float_of_int n /. t /. 1e6)

let seconds_cell = function Skipped -> "-" | Time t -> Printf.sprintf "%.3f" t

let print_table ~header ~rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  " (List.map2 (fun cell w -> Printf.sprintf "%*s" w cell) row widths)
  in
  print_endline (line header);
  print_endline (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> print_endline (line row)) rows

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n%!" s) fmt
