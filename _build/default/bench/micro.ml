(* Bechamel micro-benchmarks: one Test.make per experiment's core kernel,
   measuring the primitive each table/figure exercises. *)

open Bechamel
open Toolkit
module Mst = Holistic_core.Mst
module Prev = Holistic_core.Prev_occurrence
module Ost = Holistic_baselines.Order_statistic_tree
module Inc = Holistic_baselines.Incremental
module Seg = Holistic_baselines.Segment_tree
module Scenarios = Holistic_data.Scenarios

let n = 100_000
let keys = lazy (Scenarios.uniform_ints ~n ~bound:n ())
let tree = lazy (Mst.create (Lazy.force keys))
let prev_tree = lazy (Mst.create (Prev.compute (Lazy.force keys)))
let seg = lazy (Seg.Int_sum.create (Lazy.force keys))

let counter = ref 0

let next_frame () =
  counter := (!counter + 7919) mod n;
  let i = !counter in
  (max 0 (i - (n / 20)), i + 1)

let tests =
  [
    (* Fig. 9/10/11: merge sort tree construction (build phase) *)
    Test.make ~name:"fig10/mst-build-100k" (Staged.stage (fun () -> Mst.create (Lazy.force keys)));
    (* Fig. 10 rank panel / Fig. 13: one cascaded range-count probe *)
    Test.make ~name:"fig13/mst-count-probe"
      (Staged.stage (fun () ->
           let t = Lazy.force tree in
           let lo, hi = next_frame () in
           Mst.count t ~lo ~hi ~less_than:(Lazy.force keys).(hi - 1)));
    (* Fig. 10 median panel: one cascaded selection probe *)
    Test.make ~name:"fig10/mst-select-probe"
      (Staged.stage (fun () ->
           let t = Lazy.force tree in
           let lo, hi = next_frame () in
           Mst.select t ~ranges:[| (lo, hi) |] ~nth:((hi - lo) / 2)));
    (* Fig. 10/14 distinct panel: one back-reference count probe *)
    Test.make ~name:"fig14/distinct-probe"
      (Staged.stage (fun () ->
           let t = Lazy.force prev_tree in
           let lo, hi = next_frame () in
           Mst.count t ~lo ~hi ~less_than:(lo + 1)));
    (* Fig. 10/11 OST competitor: one insert+remove+select step *)
    Test.make ~name:"fig11/ost-step"
      (let ost = Ost.create () in
       for i = 0 to 999 do
         Ost.insert ost ((i * 31) mod 500)
       done;
       Staged.stage (fun () ->
           Ost.insert ost 250;
           ignore (Ost.select ost (Ost.size ost / 2));
           Ost.remove ost 250));
    (* Fig. 11/12 incremental competitor: one sorted-window step *)
    Test.make ~name:"fig12/sorted-window-step"
      (let sw = Inc.Sorted_window.create () in
       for i = 0 to 999 do
         Inc.Sorted_window.add sw ((i * 31) mod 500)
       done;
       Staged.stage (fun () ->
           Inc.Sorted_window.add sw 250;
           ignore (Inc.Sorted_window.select sw (Inc.Sorted_window.size sw / 2));
           Inc.Sorted_window.remove sw 250));
    (* Table 1 substrate: segment-tree range query (distributive aggregates) *)
    Test.make ~name:"table1/segment-tree-query"
      (Staged.stage (fun () ->
           let t = Lazy.force seg in
           let lo, hi = next_frame () in
           Seg.Int_sum.query t ~lo ~hi));
    (* Fig. 14: Algorithm 1 preprocessing over 100k values *)
    Test.make ~name:"fig14/prev-occurrence-100k"
      (Staged.stage (fun () -> Prev.compute (Lazy.force keys)));
  ]

let run () =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Harness.section "Bechamel micro-benchmarks (ns per operation)";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols (Instance.monotonic_clock) raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Printf.printf "  %-28s %12.1f ns/run\n%!" name t
          | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
        results)
    tests
