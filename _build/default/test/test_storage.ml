open Holistic_storage
module Bitset = Holistic_util.Bitset

let v = Alcotest.testable (fun fmt x -> Format.pp_print_string fmt (Value.to_string x)) Value.equal

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let test_compare () =
  let c = Value.compare_sql ~nulls_last:true in
  Alcotest.(check bool) "int < int" true (c (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "cross numeric" true (c (Value.Int 2) (Value.Float 1.5) > 0);
  Alcotest.(check bool) "cross numeric equal" true (c (Value.Int 2) (Value.Float 2.0) = 0);
  Alcotest.(check bool) "null last" true (c Value.Null (Value.Int 5) > 0);
  Alcotest.(check bool) "null first"
    true
    (Value.compare_sql ~nulls_last:false Value.Null (Value.Int 5) < 0);
  Alcotest.(check bool) "null = null" true (c Value.Null Value.Null = 0);
  Alcotest.(check bool) "strings" true (c (Value.String "abc") (Value.String "abd") < 0)

let test_equal_hash () =
  Alcotest.(check bool) "int/float equal" true (Value.equal (Value.Int 3) (Value.Float 3.0));
  Alcotest.(check bool) "hash compatible" true
    (Value.hash (Value.Int 3) = Value.hash (Value.Float 3.0));
  Alcotest.(check bool) "null equal null (grouping)" true (Value.equal Value.Null Value.Null);
  Alcotest.(check bool) "null <> value" false (Value.equal Value.Null (Value.Int 0))

let test_arithmetic () =
  Alcotest.check v "int add" (Value.Int 5) (Value.add (Value.Int 2) (Value.Int 3));
  Alcotest.check v "promotion" (Value.Float 5.5) (Value.add (Value.Int 2) (Value.Float 3.5));
  Alcotest.check v "null propagation" Value.Null (Value.add Value.Null (Value.Int 1));
  Alcotest.check v "date - date" (Value.Int 31)
    (Value.sub (Value.Date (Value.date_of_ymd 2020 2 1)) (Value.Date (Value.date_of_ymd 2020 1 1)));
  Alcotest.check v "div by zero is NULL" Value.Null (Value.div (Value.Int 1) (Value.Int 0));
  Alcotest.check_raises "type error" (Invalid_argument "Value.add: incompatible operands (4, 2)")
    (fun () -> ignore (Value.add (Value.String "a") (Value.Int 1)))

let test_calendar () =
  Alcotest.(check int) "epoch" 0 (Value.date_of_ymd 1970 1 1);
  Alcotest.(check int) "day after" 1 (Value.date_of_ymd 1970 1 2);
  let d = Value.date_of_ymd 1996 2 29 in
  Alcotest.(check (triple int int int)) "leap roundtrip" (1996, 2, 29) (Value.ymd_of_date d);
  Alcotest.(check string) "iso format" "1996-02-29" (Value.date_to_string d);
  (* exhaustive roundtrip over several years including leap boundaries *)
  let start = Value.date_of_ymd 1999 1 1 in
  for day = start to start + (366 * 4) do
    let y, m, dd = Value.ymd_of_date day in
    Alcotest.(check int) "roundtrip" day (Value.date_of_ymd y m dd)
  done

let test_add_months () =
  let d = Value.date_of_ymd 2020 1 31 in
  Alcotest.(check (triple int int int)) "clamp to feb 29" (2020, 2, 29)
    (Value.ymd_of_date (Value.add_months d 1));
  Alcotest.(check (triple int int int)) "non-leap clamp" (2021, 2, 28)
    (Value.ymd_of_date (Value.add_months d 13));
  Alcotest.(check (triple int int int)) "backwards across year" (2019, 11, 30)
    (Value.ymd_of_date (Value.add_months (Value.date_of_ymd 2020 5 30) (-6)));
  let interval = Value.Interval { months = 1; days = 0 } in
  Alcotest.check v "date minus 1 month"
    (Value.Date (Value.date_of_ymd 2019 12 31))
    (Value.sub (Value.Date d) interval)

(* ------------------------------------------------------------------ *)
(* Columns                                                             *)
(* ------------------------------------------------------------------ *)

let test_column_nulls () =
  let nulls = Bitset.create 3 in
  Bitset.set nulls 1;
  let c = Column.make ~nulls (Column.Ints [| 10; 0; 30 |]) in
  Alcotest.check v "non-null" (Value.Int 10) (Column.get c 0);
  Alcotest.check v "null row" Value.Null (Column.get c 1);
  Alcotest.(check bool) "is_null" true (Column.is_null c 1);
  Alcotest.check_raises "length mismatch" (Invalid_argument "Column.make: null mask length mismatch")
    (fun () -> ignore (Column.make ~nulls (Column.Ints [| 1 |])))

let test_of_values () =
  let c = Column.of_values [| Value.Int 1; Value.Null; Value.Int 3 |] in
  Alcotest.check v "roundtrip null" Value.Null (Column.get c 1);
  Alcotest.check v "roundtrip value" (Value.Int 3) (Column.get c 2);
  Alcotest.check_raises "mixed types" (Invalid_argument "Column.of_values: mixed types")
    (fun () -> ignore (Column.of_values [| Value.Int 1; Value.String "x" |]))

let test_distinct_ids () =
  let c = Column.floats [| 1.5; 2.5; 1.5; 3.5; 2.5 |] in
  let ids = Column.distinct_ids c in
  Alcotest.(check bool) "equal values share ids" true (ids.(0) = ids.(2) && ids.(1) = ids.(4));
  Alcotest.(check bool) "distinct values differ" true
    (ids.(0) <> ids.(1) && ids.(0) <> ids.(3) && ids.(1) <> ids.(3));
  let ints = Column.ints [| 7; 7; 9 |] in
  Alcotest.(check (array int)) "int fast path is raw values" [| 7; 7; 9 |]
    (Column.distinct_ids ints)

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

let test_table () =
  let t = Table.create [ ("a", Column.ints [| 1; 2 |]); ("b", Column.strings [| "x"; "y" |]) ] in
  Alcotest.(check int) "rows" 2 (Table.nrows t);
  Alcotest.(check (list string)) "names" [ "a"; "b" ] (Table.column_names t);
  Alcotest.check v "cell" (Value.String "y") (Column.get (Table.column t "b") 1);
  Alcotest.check_raises "unknown column" Not_found (fun () -> ignore (Table.column t "zz"));
  Alcotest.check_raises "ragged" (Invalid_argument "Table.create: column \"b\" has 1 rows, expected 2")
    (fun () -> ignore (Table.create [ ("a", Column.ints [| 1; 2 |]); ("b", Column.ints [| 1 |]) ]));
  Alcotest.check_raises "duplicate name" (Invalid_argument "Table.create: duplicate column name")
    (fun () -> ignore (Table.create [ ("a", Column.ints [| 1 |]); ("a", Column.ints [| 2 |]) ]))

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let table =
  Table.create
    [
      ("x", Column.ints [| 1; 2; 3 |]);
      ("y", Column.of_values [| Value.Float 1.5; Value.Null; Value.Float 3.0 |]);
    ]

let test_expr_eval () =
  let e = Expr.(Add (Col "x", Const (Value.Int 10))) in
  Alcotest.check v "add" (Value.Int 12) (Expr.eval table e 1);
  let cmp = Expr.(Lt (Col "x", Const (Value.Int 3))) in
  Alcotest.check v "lt true" (Value.Bool true) (Expr.eval table cmp 0);
  Alcotest.check v "lt false" (Value.Bool false) (Expr.eval table cmp 2);
  let nullcmp = Expr.(Gt (Col "y", Const (Value.Float 0.0))) in
  Alcotest.check v "null comparison" Value.Null (Expr.eval table nullcmp 1)

let test_three_valued_logic () =
  let null_b = Expr.(Gt (Col "y", Const (Value.Float 0.0))) in
  let tru = Expr.Const (Value.Bool true) in
  let fls = Expr.Const (Value.Bool false) in
  Alcotest.check v "null AND false = false" (Value.Bool false)
    (Expr.eval table (Expr.And (null_b, fls)) 1);
  Alcotest.check v "null AND true = null" Value.Null (Expr.eval table (Expr.And (null_b, tru)) 1);
  Alcotest.check v "null OR true = true" (Value.Bool true)
    (Expr.eval table (Expr.Or (null_b, tru)) 1);
  Alcotest.check v "null OR false = null" Value.Null (Expr.eval table (Expr.Or (null_b, fls)) 1);
  Alcotest.check v "NOT null = null" Value.Null (Expr.eval table (Expr.Not null_b) 1);
  Alcotest.check v "is_null" (Value.Bool true) (Expr.eval table (Expr.Is_null (Expr.Col "y")) 1);
  Alcotest.(check bool) "to_bool null is false" false (Expr.to_bool Value.Null)

let test_case_abs_extremes () =
  let case =
    Expr.Case
      ( [ (Expr.Lt (Expr.Col "x", Expr.Const (Value.Int 2)), Expr.Const (Value.String "small")) ],
        Some (Expr.Const (Value.String "big")) )
  in
  Alcotest.check v "case match" (Value.String "small") (Expr.eval table case 0);
  Alcotest.check v "case else" (Value.String "big") (Expr.eval table case 2);
  let no_else = Expr.Case ([ (Expr.Const (Value.Bool false), Expr.Const (Value.Int 1)) ], None) in
  Alcotest.check v "case falls through to NULL" Value.Null (Expr.eval table no_else 0);
  Alcotest.check v "abs" (Value.Int 3) (Expr.eval table (Expr.Abs (Expr.Neg (Expr.Col "x"))) 2);
  Alcotest.check v "greatest ignores null" (Value.Float 1.5)
    (Expr.eval table (Expr.Greatest [ Expr.Col "y"; Expr.Const Value.Null ]) 0);
  Alcotest.check v "least" (Value.Int 1)
    (Expr.eval table (Expr.Least [ Expr.Col "x"; Expr.Const (Value.Int 5) ]) 0);
  Alcotest.check v "greatest all null" Value.Null
    (Expr.eval table (Expr.Greatest [ Expr.Const Value.Null ]) 0)

let test_mod () =
  let e = Expr.(Mod (Col "x", Const (Value.Int 2))) in
  Alcotest.check v "mod" (Value.Int 1) (Expr.eval table e 2);
  Alcotest.check v "mod by zero" Value.Null
    (Expr.eval table Expr.(Mod (Col "x", Const (Value.Int 0))) 0)

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)
(* ------------------------------------------------------------------ *)

let test_csv_roundtrip () =
  let t =
    Table.create
      [
        ("i", Column.of_values [| Value.Int 1; Value.Null; Value.Int (-3) |]);
        ("f", Column.floats [| 1.5; 0.1; 1e300 |]);
        ("s", Column.strings [| "plain"; "with,comma"; "with \"quotes\"\nand newline" |]);
        ("d", Column.dates [| Value.date_of_ymd 1996 2 29; 0; 10_000 |]);
        ("b", Column.of_values [| Value.Bool true; Value.Bool false; Value.Null |]);
      ]
  in
  let path = Filename.temp_file "holistic" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.save path t;
      let t' = Csv.load path in
      Alcotest.(check (list string)) "columns" (Table.column_names t) (Table.column_names t');
      Alcotest.(check int) "rows" (Table.nrows t) (Table.nrows t');
      for i = 0 to Table.nrows t - 1 do
        List.iter2
          (fun (n1, c1) (_, c2) ->
            let a = Column.get c1 i and b = Column.get c2 i in
            if not (Value.equal a b || (Value.is_null a && Value.is_null b)) then
              Alcotest.failf "cell %s[%d]: %s vs %s" n1 i (Value.to_string a) (Value.to_string b))
          (Table.columns t) (Table.columns t')
      done)

let test_csv_errors () =
  let parse s =
    let path = Filename.temp_file "holistic" ".csv" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let out = open_out path in
        output_string out s;
        close_out out;
        Csv.load path)
  in
  (match parse "a:int\n1\n2\n" with
  | t -> Alcotest.(check int) "valid parse" 2 (Table.nrows t)
  | exception _ -> Alcotest.fail "valid input rejected");
  (match parse "a\n1\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "untyped header accepted");
  match parse "a:blob\nx\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown type accepted"

(* ------------------------------------------------------------------ *)
(* Sort specs                                                          *)
(* ------------------------------------------------------------------ *)

let test_comparator () =
  let t =
    Table.create
      [
        ("a", Column.ints [| 2; 1; 2; 1 |]);
        ("b", Column.of_values [| Value.Int 9; Value.Null; Value.Int 7; Value.Int 8 |]);
      ]
  in
  let cmp = Sort_spec.comparator t [ Sort_spec.asc (Expr.Col "a"); Sort_spec.desc (Expr.Col "b") ] in
  (* (1, NULL), (1, 8), (2, 9), (2, 7): NULLS FIRST for DESC by default *)
  let order = Holistic_sort.Introsort.sort_indices_by 4 ~cmp in
  Alcotest.(check (array int)) "multi-key order" [| 1; 3; 0; 2 |] order

let test_fast_key () =
  let t = Table.create [ ("a", Column.ints [| 1 |]); ("f", Column.floats [| 1.0 |]) ] in
  (match Sort_spec.fast_key t [ Sort_spec.asc (Expr.Col "a") ] with
  | Some (Sort_spec.Int_key (_, false)) -> ()
  | _ -> Alcotest.fail "expected int fast key");
  (match Sort_spec.fast_key t [ Sort_spec.desc (Expr.Col "f") ] with
  | Some (Sort_spec.Float_key (_, true)) -> ()
  | _ -> Alcotest.fail "expected float fast key");
  Alcotest.(check bool) "expression has no fast key" true
    (Sort_spec.fast_key t [ Sort_spec.asc (Expr.Add (Expr.Col "a", Expr.Col "a")) ] = None);
  Alcotest.(check bool) "single_int_key" true
    (Sort_spec.single_int_key t [ Sort_spec.asc (Expr.Col "a") ] <> None)

let () =
  Alcotest.run "storage"
    [
      ( "value",
        [
          Alcotest.test_case "comparison" `Quick test_compare;
          Alcotest.test_case "equality and hashing" `Quick test_equal_hash;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "calendar" `Quick test_calendar;
          Alcotest.test_case "add_months" `Quick test_add_months;
        ] );
      ( "column",
        [
          Alcotest.test_case "null masks" `Quick test_column_nulls;
          Alcotest.test_case "of_values" `Quick test_of_values;
          Alcotest.test_case "distinct ids" `Quick test_distinct_ids;
        ] );
      ("table", [ Alcotest.test_case "create/access" `Quick test_table ]);
      ( "expr",
        [
          Alcotest.test_case "evaluation" `Quick test_expr_eval;
          Alcotest.test_case "three-valued logic" `Quick test_three_valued_logic;
          Alcotest.test_case "mod" `Quick test_mod;
          Alcotest.test_case "case/abs/greatest/least" `Quick test_case_abs_extremes;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip (incl. quoted newlines)" `Quick test_csv_roundtrip;
          Alcotest.test_case "malformed inputs" `Quick test_csv_errors;
        ] );
      ( "sort_spec",
        [
          Alcotest.test_case "comparator" `Quick test_comparator;
          Alcotest.test_case "fast keys" `Quick test_fast_key;
        ] );
    ]
