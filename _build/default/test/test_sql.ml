open Holistic_storage
open Holistic_window
module Sql = Holistic_sql.Sql
module Parser = Holistic_sql.Parser
module Ast = Holistic_sql.Ast
module Wf = Window_func

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_flagship () =
  (* the paper's §2.4 query parses with every extension *)
  let q =
    Parser.parse
      "select dbsystem, tps,\n\
      \  count(distinct dbsystem) over w,\n\
      \  rank(order by tps desc) over w,\n\
      \  first_value(tps order by tps desc) over w,\n\
      \  lead(tps order by tps desc) over w\n\
       from tpcc_results\n\
       window w as (order by submission_date\n\
      \  range between unbounded preceding and current row)"
  in
  Alcotest.(check int) "six select items" 6 (List.length q.Ast.select);
  Alcotest.(check string) "from" "tpcc_results" q.Ast.from;
  Alcotest.(check int) "one named window" 1 (List.length q.Ast.windows);
  match (List.nth q.Ast.select 2).Ast.value with
  | `Window w ->
      Alcotest.(check bool) "distinct" true w.Ast.distinct;
      Alcotest.(check (option string)) "window ref" (Some "w") w.Ast.over.Ast.base
  | `Expr _ -> Alcotest.fail "expected window call"

let test_parse_frame_variants () =
  let q =
    Parser.parse
      "select median(x) over (order by t groups between 2 preceding and 3 following exclude group) from t"
  in
  match (List.hd q.Ast.select).Ast.value with
  | `Window w -> begin
      match w.Ast.over.Ast.frame with
      | Some f ->
          Alcotest.(check bool) "groups mode" true (f.Ast.mode = `Groups);
          Alcotest.(check bool) "exclusion" true (f.Ast.exclusion = Ast.Group_x)
      | None -> Alcotest.fail "expected frame"
    end
  | _ -> Alcotest.fail "expected window call"

let test_parse_shorthand_frame () =
  let q = Parser.parse "select sum(x) over (order by t rows 5 preceding) from t" in
  match (List.hd q.Ast.select).Ast.value with
  | `Window { Ast.over = { Ast.frame = Some f; _ }; _ } ->
      Alcotest.(check bool) "start" true (f.Ast.start_bound = Ast.Preceding (Ast.Int_lit 5));
      Alcotest.(check bool) "implied end" true (f.Ast.end_bound = Ast.Current_row)
  | _ -> Alcotest.fail "expected frame"

let test_parse_expressions () =
  let e = Parser.parse_expr "a + b * 2 >= 10 - -3 and not (c = 'x''y')" in
  (* shape check: top is AND *)
  (match e with
  | Ast.Binop ("and", Ast.Binop (">=", Ast.Binop ("+", _, Ast.Binop ("*", _, _)), _), Ast.Unop ("not", _)) -> ()
  | _ -> Alcotest.fail "unexpected expression shape");
  match Parser.parse_expr "x between 1 and 5" with
  | Ast.Binop ("and", Ast.Binop (">=", _, _), Ast.Binop ("<=", _, _)) -> ()
  | _ -> Alcotest.fail "BETWEEN did not desugar"

let test_parse_errors () =
  let bad s =
    match Parser.parse s with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %s" s
  in
  bad "select from t";
  bad "select a from";
  bad "select count(distinct x) from t" (* window syntax without OVER *);
  bad "select sum(x) over (order by) from t";
  bad "select sum(x) over (rows between and current row) from t";
  bad "select a from t trailing_garbage"

let test_parse_offsets () =
  (* whole-token offsets for error reporting *)
  try
    ignore (Parser.parse "select $ from t");
    Alcotest.fail "expected lexer error"
  with Parser.Error (_, off) -> Alcotest.(check int) "offset of '$'" 7 off

(* ------------------------------------------------------------------ *)
(* Printer/parser round-trip property                                  *)
(* ------------------------------------------------------------------ *)

(* random query ASTs built from printable atoms; the property is
   [parse (print_query q) = q] *)
module Qgen = struct
  open QCheck.Gen

  let col = oneofl [ "a"; "b"; "c"; "ts"; "price" ]

  let rec expr depth =
    if depth = 0 then
      oneof
        [
          map (fun c -> Ast.Col c) col;
          map (fun v -> Ast.Int_lit v) (int_bound 100);
          map (fun v -> Ast.Float_lit (float_of_int v /. 4.0)) (int_bound 40);
          map (fun s -> Ast.String_lit s) (oneofl [ "x"; "it's"; "a,b" ]);
          return (Ast.Date_lit "2020-05-17");
          return (Ast.Interval_lit "1 month");
          return Ast.Null_lit;
        ]
    else
      oneof
        [
          expr 0;
          (let* op = oneofl [ "+"; "-"; "*"; "/"; "<"; "<="; "="; "<>"; ">="; ">"; "and"; "or" ] in
           let* a = expr (depth - 1) in
           let* b = expr (depth - 1) in
           return (Ast.Binop (op, a, b)));
          map (fun a -> Ast.Unop ("not", a)) (expr (depth - 1));
          map (fun a -> Ast.Unop ("-", a)) (expr (depth - 1));
          (let* a = expr (depth - 1) in
           let* n = bool in
           return (Ast.Is_null (a, n)));
          (let* a = expr (depth - 1) in
           let* b = expr (depth - 1) in
           return (Ast.Func ("mod", [ a; b ])));
        ]

  let order_key =
    let* e = expr 1 in
    let* desc = bool in
    let* nulls_first = oneofl [ None; Some true; Some false ] in
    return { Ast.expr = e; desc; nulls_first }

  let frame_bound =
    oneof
      [
        return Ast.Unbounded_preceding;
        return Ast.Current_row;
        return Ast.Unbounded_following;
        map (fun k -> Ast.Preceding (Ast.Int_lit k)) (int_bound 9);
        map (fun k -> Ast.Following (Ast.Int_lit k)) (int_bound 9);
        map (fun c -> Ast.Preceding (Ast.Col c)) col;
      ]

  let frame =
    let* mode = oneofl [ `Rows; `Range; `Groups ] in
    let* start_bound = frame_bound in
    let* end_bound = frame_bound in
    let* exclusion = oneofl [ Ast.No_others; Ast.Current_row_x; Ast.Group_x; Ast.Ties_x ] in
    return { Ast.mode; start_bound; end_bound; exclusion }

  let window ~base =
    let* base =
      if base then map (fun b -> if b then Some "w" else None) bool else return None
    in
    let* partition_by = if base = None then list_size (int_bound 2) (expr 0) else return [] in
    let* order_by = list_size (int_bound 2) order_key in
    let* frame = option frame in
    return { Ast.base; partition_by; order_by; frame }

  let window_call =
    let* func, args, arg_order, distinct_ok =
      oneof
        [
          (let* e = expr 1 in
           let* d = bool in
           return ("sum", [ e ], [], d));
          return ("count", [ Ast.Col "*" ], [], false);
          (let* keys = list_size (int_range 1 2) order_key in
           return ("rank", [], keys, false));
          (let* keys = list_size (int_range 1 2) order_key in
           let* e = expr 0 in
           return ("first_value", [ e ], keys, false));
          (let* keys = list_size (int_range 1 2) order_key in
           return ("percentile_disc", [ Ast.Float_lit 0.5 ], keys, false));
          (let* e = expr 0 in
           let* off = int_bound 3 in
           return ("lead", [ e; Ast.Int_lit off ], [], false));
        ]
    in
    let* ignore_nulls = if func = "lead" || func = "first_value" then bool else return false in
    let* filter = option (expr 1) in
    let* over = window ~base:true in
    return { Ast.func; distinct = distinct_ok; args; arg_order_by = arg_order; ignore_nulls; from_last = false; filter; over }

  let select_item =
    let* value =
      oneof [ map (fun e -> `Expr e) (expr 2); map (fun w -> `Window w) window_call ]
    in
    let* alias = option (oneofl [ "out"; "x1"; "y2" ]) in
    (* a bare column without alias keeps its name; anything else is fine *)
    return { Ast.value; alias }

  let query =
    let* select = list_size (int_range 1 4) select_item in
    let* where = option (expr 2) in
    let* windows =
      map (fun w -> [ ("w", w) ]) (window ~base:false)
    in
    let* order_by = list_size (int_bound 2) order_key in
    let* limit = option (int_bound 50) in
    return { Ast.select; from = "tbl"; where; windows; order_by; limit }
end

let print_parse_roundtrip =
  QCheck.Test.make ~name:"print_query / parse round-trip" ~count:500
    (QCheck.make ~print:(fun q -> Sql.print_query q) Qgen.query)
    (fun q ->
      let printed = Sql.print_query q in
      match Parser.parse printed with
      | q' -> q' = q
      | exception Parser.Error (msg, off) ->
          QCheck.Test.fail_reportf "parse error %S at %d in %s" msg off printed)

(* ------------------------------------------------------------------ *)
(* Planner / execution                                                 *)
(* ------------------------------------------------------------------ *)

let table =
  Table.create
    [
      ("t", Column.ints [| 1; 2; 3; 4; 5; 6 |]);
      ("x", Column.floats [| 4.0; 2.0; 6.0; 1.0; 9.0; 5.0 |]);
      ("g", Column.ints [| 0; 1; 0; 1; 0; 1 |]);
    ]

let tables = [ ("tbl", table) ]

let col_strings t name =
  Array.to_list (Array.init (Table.nrows t) (fun i -> Value.to_string (Column.get (Table.column t name) i)))

let test_sql_median_matches_api () =
  let via_sql =
    Sql.query ~tables
      "select median(x) over (order by t rows between 2 preceding and current row) as m from tbl"
  in
  let over =
    Window_spec.over
      ~order_by:[ Sort_spec.asc (Expr.Col "t") ]
      ~frame:(Window_spec.rows_between (Window_spec.preceding 2) Window_spec.Current_row)
      ()
  in
  let via_api = Executor.run table ~over [ Wf.median ~name:"m" (Expr.Col "x") ] in
  Alcotest.(check (list string)) "same medians" (col_strings via_api "m") (col_strings via_sql "m")

let test_sql_partition_and_named_window () =
  let r =
    Sql.query ~tables
      "select t, rank(order by x desc) over w as r from tbl \
       window w as (partition by g order by t rows between unbounded preceding and current row) \
       order by t"
  in
  (* partition g=0 rows (t=1,3,5 with x=4,6,9): ranks 1,1,1 as each new x is
     the max so far; partition g=1 (t=2,4,6 with x=2,1,5): ranks 1,2,1 *)
  Alcotest.(check (list string)) "ranks" [ "1"; "1"; "1"; "2"; "1"; "1" ] (col_strings r "r")

let test_sql_where_filter_limit () =
  let r =
    Sql.query ~tables
      "select t, count(*) over (order by t) as c from tbl where x > 2 order by t desc limit 2"
  in
  Alcotest.(check (list string)) "t desc limited" [ "6"; "5" ] (col_strings r "t");
  Alcotest.(check (list string)) "running count over filtered rows" [ "4"; "3" ] (col_strings r "c")

let test_sql_interval_range () =
  let dates =
    Column.dates (Array.map (fun (y, m, d) -> Value.date_of_ymd y m d)
      [| (2020, 1, 1); (2020, 1, 20); (2020, 2, 5); (2020, 3, 1) |])
  in
  let tbl = Table.create [ ("d", dates); ("v", Column.ints [| 1; 2; 3; 4 |]) ] in
  let r =
    Sql.query ~tables:[ ("e", tbl) ]
      "select count(*) over (order by d range between interval '1 month' preceding and current row) as c \
       from e order by d"
  in
  (* windows: jan1:{jan1}, jan20:{jan1,jan20}, feb5:{jan20? jan5..feb5 → jan20,feb5}, mar1:{feb5,mar1} *)
  Alcotest.(check (list string)) "monthly windows" [ "1"; "2"; "2"; "2" ] (col_strings r "c")

let test_sql_filter_clause () =
  let r =
    Sql.query ~tables
      "select sum(x) filter (where g = 0) over (order by t rows between unbounded preceding and current row) as s \
       from tbl order by t"
  in
  Alcotest.(check (list string)) "filtered running sum" [ "4"; "4"; "10"; "10"; "19"; "19" ]
    (col_strings r "s")

let test_sql_exclusion () =
  let r =
    Sql.query ~tables
      "select sum(x) over (order by t rows between unbounded preceding and unbounded following exclude current row) as s \
       from tbl order by t"
  in
  (* total 27 minus own value *)
  Alcotest.(check (list string)) "exclude current row" [ "23"; "25"; "21"; "26"; "18"; "22" ]
    (col_strings r "s")

let test_sql_algorithm_override () =
  let q = "select median(x) over (order by t rows between 1 preceding and current row) as m from tbl" in
  let a = Sql.query ~tables q in
  let b = Sql.query ~algorithm:Wf.Naive ~tables q in
  Alcotest.(check (list string)) "algorithms agree" (col_strings a "m") (col_strings b "m")

let test_sql_semantic_errors () =
  let bad s msg_part =
    match Sql.query ~tables s with
    | exception Sql.Semantic_error msg ->
        if not (String.length msg >= String.length msg_part) then Alcotest.fail msg
    | _ -> Alcotest.failf "expected semantic error for %s" s
  in
  bad "select nope from tbl" "unknown column";
  bad "select median(x) over v from tbl" "unknown window";
  bad "select frobnicate(x) over (order by t) from tbl" "unknown window function";
  bad "select percentile_disc(0.5) over (order by t) from tbl" "requires ORDER BY";
  bad "select x from nonexistent" "unknown table"

let test_sql_case_expression () =
  let r =
    Sql.query ~tables
      "select case when x > 5 then 'high' when x > 2 then 'mid' else 'low' end as band, \
              abs(0 - t) as a, greatest(x, 5.0) as gr from tbl order by t limit 3"
  in
  Alcotest.(check (list string)) "bands" [ "mid"; "low"; "high" ] (col_strings r "band");
  Alcotest.(check (list string)) "abs" [ "1"; "2"; "3" ] (col_strings r "a");
  Alcotest.(check (list string)) "greatest" [ "5"; "5"; "6" ] (col_strings r "gr")

let test_sql_in_list_and_from_last () =
  let r =
    Sql.query ~tables
      "select t, nth_value(x, 1 order by x) from last over \
         (order by t rows between 2 preceding and current row) as second_largest \
       from tbl where t in (1, 3, 4, 6) order by t"
  in
  Alcotest.(check (list string)) "filtered by IN" [ "1"; "3"; "4"; "6" ] (col_strings r "t");
  (* remaining rows in t order: x = 4, 6, 1, 5; frames of 3 rows; nth(1)
     FROM LAST = largest in frame *)
  Alcotest.(check (list string)) "from last picks the max" [ "4"; "6"; "6"; "6" ]
    (col_strings r "second_largest");
  let q = Parser.parse "select a from t where b not in (1, 2)" in
  match q.Ast.where with
  | Some (Ast.Unop ("not", Ast.Binop ("or", _, _))) -> ()
  | _ -> Alcotest.fail "NOT IN did not desugar"

let test_sql_mode () =
  let r =
    Sql.query ~tables
      "select mode(g) over (order by t rows between 2 preceding and current row) as m from tbl order by t"
  in
  (* g = 0 1 0 1 0 1 in t order; windows of <=3 rows; ties -> smallest value *)
  Alcotest.(check (list string)) "modes" [ "0"; "0"; "0"; "1"; "0"; "1" ] (col_strings r "m")

let test_sql_count_star_and_aliases () =
  let r = Sql.query ~tables "select t as time, count(*) over (order by t) as n, x + 1 as xp from tbl order by t limit 3" in
  Alcotest.(check (list string)) "names" [ "time"; "n"; "xp" ] (Table.column_names r);
  Alcotest.(check (list string)) "expr column" [ "5"; "3"; "7" ] (col_strings r "xp")

let () =
  Alcotest.run "sql"
    [
      ( "parser",
        [
          Alcotest.test_case "flagship query (2.4)" `Quick test_parse_flagship;
          Alcotest.test_case "frame variants" `Quick test_parse_frame_variants;
          Alcotest.test_case "shorthand frame" `Quick test_parse_shorthand_frame;
          Alcotest.test_case "expressions" `Quick test_parse_expressions;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error offsets" `Quick test_parse_offsets;
          QCheck_alcotest.to_alcotest print_parse_roundtrip;
        ] );
      ( "execution",
        [
          Alcotest.test_case "median matches API" `Quick test_sql_median_matches_api;
          Alcotest.test_case "partition + named window" `Quick test_sql_partition_and_named_window;
          Alcotest.test_case "where/order/limit" `Quick test_sql_where_filter_limit;
          Alcotest.test_case "interval RANGE frame" `Quick test_sql_interval_range;
          Alcotest.test_case "FILTER clause" `Quick test_sql_filter_clause;
          Alcotest.test_case "frame exclusion" `Quick test_sql_exclusion;
          Alcotest.test_case "algorithm override" `Quick test_sql_algorithm_override;
          Alcotest.test_case "semantic errors" `Quick test_sql_semantic_errors;
          Alcotest.test_case "count(*) and aliases" `Quick test_sql_count_star_and_aliases;
          Alcotest.test_case "CASE / scalar functions" `Quick test_sql_case_expression;
          Alcotest.test_case "IN lists / NTH_VALUE FROM LAST" `Quick test_sql_in_list_and_from_last;
          Alcotest.test_case "windowed MODE" `Quick test_sql_mode;
        ] );
    ]
