module Task_pool = Holistic_parallel.Task_pool

let test_run_list_results () =
  let pool = Task_pool.create 1 in
  let acc = Array.make 10 0 in
  Task_pool.run_list pool (List.init 10 (fun i () -> acc.(i) <- i * 2));
  Alcotest.(check (array int)) "all tasks ran" (Array.init 10 (fun i -> i * 2)) acc;
  Task_pool.shutdown pool

let test_run_list_multi_domain () =
  let pool = Task_pool.create 4 in
  let acc = Array.make 200 0 in
  Task_pool.run_list pool (List.init 200 (fun i () -> acc.(i) <- i + 1));
  Alcotest.(check int) "sum" (200 * 201 / 2) (Array.fold_left ( + ) 0 acc);
  Task_pool.shutdown pool

exception Boom

let test_exception_propagation () =
  let pool = Task_pool.create 2 in
  let ran_rest = ref 0 in
  (try
     Task_pool.run_list pool
       [ (fun () -> raise Boom); (fun () -> incr ran_rest); (fun () -> incr ran_rest) ];
     Alcotest.fail "expected exception"
   with Boom -> ());
  (* tasks after the failing one still ran to completion *)
  Alcotest.(check int) "remaining tasks completed" 2 !ran_rest;
  (* the pool is reusable after an error *)
  let ok = ref false in
  Task_pool.run_list pool [ (fun () -> ok := true) ];
  Alcotest.(check bool) "pool reusable" true !ok;
  Task_pool.shutdown pool

let test_parallel_for_coverage () =
  let pool = Task_pool.create 3 in
  let hits = Array.make 1000 0 in
  Task_pool.parallel_for pool ~lo:0 ~hi:1000 ~chunk:37 (fun lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Alcotest.(check bool) "each index exactly once" true (Array.for_all (( = ) 1) hits);
  Task_pool.shutdown pool

let test_parallel_for_empty () =
  let pool = Task_pool.create 1 in
  let ran = ref false in
  Task_pool.parallel_for pool ~lo:5 ~hi:5 ~chunk:10 (fun _ _ -> ran := true);
  Alcotest.(check bool) "no chunk for empty range" false !ran;
  Alcotest.check_raises "zero chunk rejected"
    (Invalid_argument "Task_pool.parallel_for: chunk must be positive") (fun () ->
      Task_pool.parallel_for pool ~lo:0 ~hi:10 ~chunk:0 (fun _ _ -> ()));
  Task_pool.shutdown pool

let test_shutdown_idempotent () =
  let pool = Task_pool.create 2 in
  Task_pool.shutdown pool;
  Task_pool.shutdown pool

let test_task_size_constant () =
  (* The paper's §5.5 task granularity is load-bearing for the experiments;
     changing it invalidates EXPERIMENTS.md. *)
  Alcotest.(check int) "20000-tuple morsels" 20_000 Task_pool.default_task_size

let () =
  Alcotest.run "parallel"
    [
      ( "task_pool",
        [
          Alcotest.test_case "run_list inline" `Quick test_run_list_results;
          Alcotest.test_case "run_list multi-domain" `Quick test_run_list_multi_domain;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "parallel_for coverage" `Quick test_parallel_for_coverage;
          Alcotest.test_case "parallel_for edge cases" `Quick test_parallel_for_empty;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
          Alcotest.test_case "default task size" `Quick test_task_size_constant;
        ] );
    ]
