open Holistic_storage
open Holistic_window
module Wf = Window_func
module Rng = Holistic_util.Rng

(* =====================================================================
   Independent reference implementation ("oracle").

   Evaluates window functions from first principles over boxed values in
   O(n² · frame) — it shares nothing with the engine under test except the
   Value primitives: no Frame, no Remap, no Rank_encode, no trees. Frames
   are represented as per-position inclusion predicates rather than range
   lists, exclusion included.
   ===================================================================== *)

module Oracle = struct
  open Window_spec

  let nulls_last (k : Sort_spec.key) =
    match k.nulls, k.direction with
    | Sort_spec.Nulls_last, _ -> true
    | Sort_spec.Nulls_first, _ -> false
    | Sort_spec.Nulls_default, Sort_spec.Asc -> true
    | Sort_spec.Nulls_default, Sort_spec.Desc -> false

  let key_cmp table (k : Sort_spec.key) i j =
    let f = Expr.compile table k.expr in
    let a = f i and b = f j in
    match Value.is_null a, Value.is_null b with
    | true, true -> 0
    | true, false -> if nulls_last k then 1 else -1
    | false, true -> if nulls_last k then -1 else 1
    | false, false ->
        let c = Value.compare_sql ~nulls_last:true a b in
        if k.direction = Sort_spec.Desc then -c else c

  let spec_cmp table spec i j =
    let rec go = function
      | [] -> 0
      | k :: rest ->
          let c = key_cmp table k i j in
          if c <> 0 then c else go rest
    in
    go spec

  (* rows of one partition, in window order (original row ids) *)
  let partitions table over =
    let n = Table.nrows table in
    let pkeys = List.map (Expr.compile table) over.partition_by in
    let key_of i = List.map (fun f -> f i) pkeys in
    let parts = ref [] in
    for i = n - 1 downto 0 do
      let k = key_of i in
      match List.assoc_opt k !parts with
      | Some r -> r := i :: !r
      | None -> parts := (k, ref [ i ]) :: !parts
    done;
    List.map
      (fun (_, r) ->
        Array.of_list (List.stable_sort (spec_cmp table over.order_by) !r))
      !parts

  let int_offset table e row =
    match Expr.eval table e row with
    | Value.Int k -> k
    | _ -> failwith "oracle: non-integer offset"

  (* inclusion predicate for row position [r]'s frame over partition [rows] *)
  let frame_pred table over rows r =
    let np = Array.length rows in
    let cmp = spec_cmp table over.order_by in
    let peer a b = cmp rows.(a) rows.(b) = 0 in
    let frame =
      match over.frame with
      | Some f -> f
      | None ->
          if over.order_by = [] then Window_spec.whole_partition
          else range_between Unbounded_preceding Current_row
    in
    let in_base =
      match frame.mode with
      | Rows ->
          let lo =
            match frame.start_bound with
            | Unbounded_preceding -> 0
            | Preceding e -> r - int_offset table e rows.(r)
            | Current_row -> r
            | Following e -> r + int_offset table e rows.(r)
            | Unbounded_following -> np
          in
          let hi =
            match frame.end_bound with
            | Unbounded_preceding -> -1
            | Preceding e -> r - int_offset table e rows.(r)
            | Current_row -> r
            | Following e -> r + int_offset table e rows.(r)
            | Unbounded_following -> np - 1
          in
          fun p -> p >= lo && p <= hi
      | Groups ->
          (* group index by walking peers *)
          let gidx = Array.make np 0 in
          for p = 1 to np - 1 do
            gidx.(p) <- (if peer p (p - 1) then gidx.(p - 1) else gidx.(p - 1) + 1)
          done;
          let glo =
            match frame.start_bound with
            | Unbounded_preceding -> min_int
            | Preceding e -> gidx.(r) - int_offset table e rows.(r)
            | Current_row -> gidx.(r)
            | Following e -> gidx.(r) + int_offset table e rows.(r)
            | Unbounded_following -> max_int
          in
          let ghi =
            match frame.end_bound with
            | Unbounded_preceding -> min_int
            | Preceding e -> gidx.(r) - int_offset table e rows.(r)
            | Current_row -> gidx.(r)
            | Following e -> gidx.(r) + int_offset table e rows.(r)
            | Unbounded_following -> max_int
          in
          fun p -> gidx.(p) >= glo && gidx.(p) <= ghi
      | Range ->
          (* offset bounds need the single sort key; CURRENT ROW / UNBOUNDED
             bounds work with any ORDER BY via peer comparison *)
          let key =
            match over.order_by with
            | [ k ] -> k
            | k :: _ -> k
            | [] -> failwith "oracle: range without order"
          in
          let full_cmp p q = spec_cmp table over.order_by rows.(p) rows.(q) in
          let f = Expr.compile table key.expr in
          let v p = f rows.(p) in
          let desc = key.direction = Sort_spec.Desc in
          let cmpv a b =
            let c = Value.compare_sql ~nulls_last:true a b in
            if desc then -c else c
          in
          (* direction- and nulls-aware frame-order comparison *)
          let kc p q = key_cmp table key rows.(p) rows.(q) in
          let vr = v r in
          (* offset bounds behave like CURRENT ROW whenever a NULL key is
             involved (PostgreSQL semantics: NULL rows are peers; numeric
             offsets never reach them) *)
          let sat_start p =
            match frame.start_bound with
            | Unbounded_preceding -> true
            | Current_row -> full_cmp p r >= 0
            | Unbounded_following -> false
            | Preceding e | Following e ->
                if Value.is_null vr || Value.is_null (v p) then kc p r >= 0
                else begin
                  let d = Expr.eval table e rows.(r) in
                  let back = match frame.start_bound with Preceding _ -> true | _ -> false in
                  let target =
                    if back <> desc then Value.sub vr d else Value.add vr d
                  in
                  cmpv (v p) target >= 0
                end
          in
          let sat_end p =
            match frame.end_bound with
            | Unbounded_following -> true
            | Current_row -> full_cmp p r <= 0
            | Unbounded_preceding -> false
            | Preceding e | Following e ->
                if Value.is_null vr || Value.is_null (v p) then kc p r <= 0
                else begin
                  let d = Expr.eval table e rows.(r) in
                  let back = match frame.end_bound with Preceding _ -> true | _ -> false in
                  let target =
                    if back <> desc then Value.sub vr d else Value.add vr d
                  in
                  cmpv (v p) target <= 0
                end
          in
          fun p -> sat_start p && sat_end p
    in
    let excluded p =
      match frame.exclusion with
      | Exclude_no_others -> false
      | Exclude_current_row -> p = r
      | Exclude_group -> peer p r
      | Exclude_ties -> p <> r && peer p r
    in
    fun p -> in_base p && not (excluded p)

  (* evaluate one item over one partition; writes original-row slots *)
  let eval_item table over rows (item : Wf.t) out =
    let np = Array.length rows in
    let filt =
      match item.filter with
      | None -> fun _ -> true
      | Some e ->
          let f = Expr.compile table e in
          fun p -> Expr.to_bool (f rows.(p))
    in
    let forder spec = if spec = [] then over.Window_spec.order_by else spec in
    (* function-order comparison on partition positions with position
       tie-break (the ROW_NUMBER disambiguation) *)
    let fcmp spec p q = spec_cmp table (forder spec) rows.(p) rows.(q) in
    let fcmp_total spec p q =
      let c = fcmp spec p q in
      if c <> 0 then c else compare p q
    in
    for r = 0 to np - 1 do
      let pred = frame_pred table over rows r in
      let members p = pred p && filt p in
      let frame_list = List.filter members (List.init np (fun p -> p)) in
      let s_all = List.length frame_list in
      let result =
        match item.func with
        | Wf.Aggregate { kind; arg; distinct } -> begin
            let argv p = Expr.eval table (Option.get arg) rows.(p) in
            match kind with
            | Wf.Count_star -> Value.Int s_all
            | Wf.Count ->
                let vals = List.filter (fun p -> not (Value.is_null (argv p))) frame_list in
                if distinct then begin
                  let rec uniq = function
                    | [] -> []
                    | v :: rest -> v :: uniq (List.filter (fun w -> not (Value.equal v w)) rest)
                  in
                  Value.Int (List.length (uniq (List.map argv vals)))
                end
                else Value.Int (List.length vals)
            | Wf.Sum | Wf.Avg ->
                let vals =
                  List.filter_map (fun p -> if Value.is_null (argv p) then None else Some (argv p)) frame_list
                in
                let vals =
                  if distinct then begin
                    let rec uniq = function
                      | [] -> []
                      | v :: rest -> v :: uniq (List.filter (fun w -> not (Value.equal v w)) rest)
                    in
                    uniq vals
                  end
                  else vals
                in
                if vals = [] then Value.Null
                else begin
                  let sum = List.fold_left Value.add (Value.Int 0) vals in
                  if kind = Wf.Sum then
                    (* the engine computes distinct sums in float *)
                    if distinct then
                      Value.Float
                        (List.fold_left
                           (fun acc v ->
                             acc +. (match v with Value.Int x -> float_of_int x | Value.Float x -> x | _ -> nan))
                           0.0 vals)
                    else sum
                  else begin
                    let s = match sum with Value.Int x -> float_of_int x | Value.Float x -> x | _ -> nan in
                    Value.Float (s /. float_of_int (List.length vals))
                  end
                end
            | Wf.Min | Wf.Max ->
                let vals = List.filter (fun p -> not (Value.is_null (argv p))) frame_list in
                List.fold_left
                  (fun acc p ->
                    let v = argv p in
                    if Value.is_null acc then v
                    else if kind = Wf.Min then
                      if Value.compare_sql ~nulls_last:true v acc < 0 then v else acc
                    else if Value.compare_sql ~nulls_last:true v acc > 0 then v
                    else acc)
                  Value.Null vals
          end
        | Wf.Mode arg -> begin
            let af = Expr.compile table arg in
            let vals =
              List.filter_map
                (fun p ->
                  let v = af rows.(p) in
                  if Value.is_null v then None else Some v)
                frame_list
            in
            let rec distinct = function
              | [] -> []
              | v :: rest -> v :: distinct (List.filter (fun w -> not (Value.equal v w)) rest)
            in
            let count v = List.length (List.filter (Value.equal v) vals) in
            List.fold_left
              (fun acc v ->
                let c = count v in
                match acc with
                | Value.Null -> v
                | best ->
                    let bc = count best in
                    if c > bc || (c = bc && Value.compare_sql ~nulls_last:true v best < 0) then v
                    else best)
              Value.Null (distinct vals)
          end
        | Wf.Rank spec ->
            Value.Int (1 + List.length (List.filter (fun p -> fcmp spec p r < 0) frame_list))
        | Wf.Dense_rank spec ->
            (* count equivalence classes strictly below the current row *)
            let below = List.filter (fun p -> fcmp spec p r < 0) frame_list in
            let rec classes = function
              | [] -> 0
              | p :: rest -> 1 + classes (List.filter (fun q -> fcmp spec p q <> 0) rest)
            in
            Value.Int (1 + classes below)
        | Wf.Row_number spec ->
            Value.Int (1 + List.length (List.filter (fun p -> fcmp_total spec p r < 0) frame_list))
        | Wf.Percent_rank spec ->
            if s_all <= 1 then Value.Float 0.0
            else begin
              let less = List.length (List.filter (fun p -> fcmp spec p r < 0) frame_list) in
              Value.Float (float_of_int less /. float_of_int (s_all - 1))
            end
        | Wf.Cume_dist spec ->
            if s_all = 0 then Value.Null
            else begin
              let le = List.length (List.filter (fun p -> fcmp spec p r <= 0) frame_list) in
              Value.Float (float_of_int le /. float_of_int s_all)
            end
        | Wf.Ntile (b, spec) ->
            if s_all = 0 then Value.Null
            else begin
              let rn0 =
                min (s_all - 1) (List.length (List.filter (fun p -> fcmp_total spec p r < 0) frame_list))
              in
              (* build the bucket sizes explicitly: s = q·b + rem, first rem
                 buckets get q+1 rows *)
              let q = s_all / b and rem = s_all mod b in
              let rec find bucket start =
                let size = if bucket <= rem then q + 1 else q in
                if rn0 < start + size || bucket >= b then bucket else find (bucket + 1) (start + size)
              in
              Value.Int (find 1 0)
            end
        | Wf.Percentile_disc (p, spec) | Wf.Percentile_cont (p, spec) -> begin
            let keyexpr = (List.hd spec).Sort_spec.expr in
            let kf = Expr.compile table keyexpr in
            let qual = List.filter (fun q -> not (Value.is_null (kf rows.(q)))) frame_list in
            let sorted = List.stable_sort (fcmp_total spec) qual in
            let s = List.length sorted in
            if s = 0 then Value.Null
            else begin
              match item.func with
              | Wf.Percentile_disc _ ->
                  let i = max 0 (min (s - 1) (int_of_float (Float.ceil (p *. float_of_int s)) - 1)) in
                  kf rows.(List.nth sorted i)
              | _ ->
                  let x = p *. float_of_int (s - 1) in
                  let lo = int_of_float (Float.floor x) in
                  let frac = x -. float_of_int lo in
                  let fv i =
                    match kf rows.(List.nth sorted i) with
                    | Value.Int v -> float_of_int v
                    | Value.Float v -> v
                    | Value.Date d -> float_of_int d
                    | _ -> nan
                  in
                  if frac <= 0.0 || lo + 1 >= s then Value.Float (fv lo)
                  else Value.Float (fv lo +. (frac *. (fv (lo + 1) -. fv lo)))
            end
          end
        | Wf.First_value vf | Wf.Last_value vf | Wf.Nth_value (_, _, vf) | Wf.Lead (_, _, vf)
        | Wf.Lag (_, _, vf) -> begin
            let af = Expr.compile table vf.Wf.arg in
            let qual =
              if vf.Wf.ignore_nulls then
                List.filter (fun q -> not (Value.is_null (af rows.(q)))) frame_list
              else frame_list
            in
            let sorted = List.stable_sort (fcmp_total vf.Wf.order) qual in
            let s = List.length sorted in
            let nth i = if i >= 0 && i < s then Some (af rows.(List.nth sorted i)) else None in
            match item.func with
            | Wf.First_value _ -> Option.value (nth 0) ~default:Value.Null
            | Wf.Last_value _ -> Option.value (nth (s - 1)) ~default:Value.Null
            | Wf.Nth_value (k, from_last, _) ->
                Option.value (nth (if from_last then s - k else k - 1)) ~default:Value.Null
            | Wf.Lead (off, default, _) | Wf.Lag (off, default, _) -> begin
                let off = match item.func with Wf.Lag _ -> -off | _ -> off in
                let rn = List.length (List.filter (fun q -> fcmp_total vf.Wf.order q r < 0) sorted) in
                match nth (rn + off) with
                | Some v -> v
                | None -> (
                    match default with
                    | Some e -> Expr.eval table e rows.(r)
                    | None -> Value.Null)
              end
            | _ -> assert false
          end
      in
      out.(rows.(r)) <- result
    done

  let run table ~over items =
    let parts = partitions table over in
    List.map
      (fun (item : Wf.t) ->
        let out = Array.make (Table.nrows table) Value.Null in
        List.iter (fun rows -> eval_item table over rows item out) parts;
        (item.name, out))
      items
end

(* =====================================================================
   Random test-case generation
   ===================================================================== *)

let value_eq a b =
  match a, b with
  | Value.Float x, Value.Float y ->
      (Float.is_nan x && Float.is_nan y) || Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.abs x)
  | _ -> (Value.is_null a && Value.is_null b) || Value.equal a b

let make_table rng n =
  let ts = Array.init n (fun _ -> Rng.int rng 30) in
  let vcol =
    Array.init n (fun _ ->
        if Rng.int rng 8 = 0 then Value.Null else Value.Float (float_of_int (Rng.int rng 25)))
  in
  let k = Array.init n (fun _ -> Rng.int rng 6) in
  let p = Array.init n (fun _ -> Rng.int rng 3) in
  let s = Array.init n (fun _ -> [| "ant"; "bee"; "cat"; "dog" |].(Rng.int rng 4)) in
  let off = Array.init n (fun _ -> Rng.int rng 6) in
  Table.create
    [
      ("ts", Column.ints ts);
      ("v", Column.of_values vcol);
      ("k", Column.ints k);
      ("p", Column.ints p);
      ("s", Column.strings s);
      ("off", Column.ints off);
    ]

let random_frame rng =
  let bound side =
    match Rng.int rng (if side = `Start then 4 else 4) with
    | 0 -> Window_spec.Unbounded_preceding
    | 1 -> Window_spec.preceding (Rng.int rng 8)
    | 2 -> Window_spec.Current_row
    | _ -> Window_spec.following (Rng.int rng 8)
  in
  let sb = if Rng.int rng 6 = 0 then Window_spec.Unbounded_following else bound `Start in
  let eb = if Rng.int rng 6 = 0 then Window_spec.Unbounded_preceding else bound `End in
  let exclusion =
    [| Window_spec.Exclude_no_others; Exclude_current_row; Exclude_group; Exclude_ties |].(Rng.int rng 4)
  in
  let mode = [| Window_spec.Rows; Range; Groups |].(Rng.int rng 3) in
  (* per-row expression bounds for ROWS mode sometimes (§2.2) *)
  let sb =
    if mode = Window_spec.Rows && Rng.int rng 4 = 0 then Window_spec.Preceding (Expr.Col "off")
    else sb
  in
  { Window_spec.mode; start_bound = sb; end_bound = eb; exclusion }

let random_over rng =
  let partition_by = if Rng.bool rng then [ Expr.Col "p" ] else [] in
  let order_by =
    match Rng.int rng 4 with
    | 0 -> [ Sort_spec.asc (Expr.Col "ts") ]
    | 1 -> [ Sort_spec.desc (Expr.Col "ts") ]
    | 2 -> [ Sort_spec.asc (Expr.Col "ts"); Sort_spec.desc (Expr.Col "k") ]
    | _ -> [ Sort_spec.asc (Expr.Col "v") ]
  in
  let frame = if Rng.int rng 8 = 0 then None else Some (random_frame rng) in
  (* RANGE offset bounds require a single key; retry with ROWS otherwise *)
  let frame =
    match frame with
    | Some f when f.Window_spec.mode = Window_spec.Range && List.length order_by <> 1 ->
        Some { f with Window_spec.mode = Window_spec.Rows }
    | f -> f
  in
  Window_spec.over ~partition_by ~order_by ?frame ()

let some_filter rng =
  if Rng.int rng 3 = 0 then Some Expr.(Gt (Col "k", Const (Value.Int 1))) else None

let forder rng =
  match Rng.int rng 3 with
  | 0 -> [ Sort_spec.asc (Expr.Col "v") ]
  | 1 -> [ Sort_spec.desc (Expr.Col "v") ]
  | _ -> [ Sort_spec.asc (Expr.Col "k"); Sort_spec.asc (Expr.Col "ts") ]

let random_items rng =
  let filter = some_filter rng in
  [
    Wf.count_star ?filter ~name:"cstar" ();
    Wf.count ?filter ~name:"cnt" (Expr.Col "v");
    Wf.count ?filter ~distinct:true ~name:"dcnt" (Expr.Col "k");
    Wf.sum ?filter ~distinct:true ~name:"dsum" (Expr.Col "k");
    Wf.avg ?filter ~distinct:true ~name:"davg" (Expr.Col "k");
    Wf.sum ?filter ~name:"sum" (Expr.Col "v");
    Wf.avg ?filter ~name:"avg" (Expr.Col "v");
    Wf.min_ ?filter ~name:"mn" (Expr.Col "v");
    Wf.max_ ?filter ~name:"mx" (Expr.Col "s");
    Wf.rank ?filter ~name:"rnk" (forder rng);
    Wf.dense_rank ?filter ~name:"drnk" (forder rng);
    Wf.row_number ?filter ~name:"rno" (forder rng);
    Wf.percent_rank ?filter ~name:"prnk" (forder rng);
    Wf.cume_dist ?filter ~name:"cd" (forder rng);
    Wf.ntile ?filter ~name:"nt" (1 + Rng.int rng 5) (forder rng);
    Wf.percentile_disc ?filter ~name:"pd"
      (float_of_int (Rng.int rng 101) /. 100.0)
      [ Sort_spec.asc (Expr.Col "v") ];
    Wf.percentile_cont ?filter ~name:"pc"
      (float_of_int (Rng.int rng 101) /. 100.0)
      [ Sort_spec.asc (Expr.Col "v") ];
    Wf.median ?filter ~name:"med" (Expr.Col "v");
    Wf.mode ?filter ~name:"mode" (Expr.Col "k");
    Wf.mode ?filter ~name:"modef" (Expr.Col "v");
    Wf.first_value ?filter ~order:(forder rng) ~name:"fv" (Expr.Col "v");
    Wf.last_value ?filter ~order:(forder rng) ~name:"lv" (Expr.Col "v");
    Wf.nth_value ?filter ~order:(forder rng) ~name:"nv" (1 + Rng.int rng 4) (Expr.Col "v");
    Wf.nth_value ?filter ~order:(forder rng) ~from_last:true ~name:"nvl" (1 + Rng.int rng 4)
      (Expr.Col "v");
    Wf.first_value ?filter ~ignore_nulls:true ~order:(forder rng) ~name:"fvn" (Expr.Col "v");
    Wf.lead ?filter ~ignore_nulls:true ~order:(forder rng) ~name:"ldn" (Expr.Col "v");
    Wf.lag ?filter ~order:(forder rng) ~name:"lgn" (Expr.Col "v");
    Wf.lead ?filter ~order:(forder rng) ~offset:(Rng.int rng 3) ~name:"ld" (Expr.Col "v");
    Wf.lag ?filter ~order:(forder rng) ~offset:(Rng.int rng 3)
      ~default:(Expr.Const (Value.Float (-1.0)))
      ~name:"lg" (Expr.Col "v");
  ]

let compare_against_oracle ~algorithm ~supported seed =
  let rng = Rng.create seed in
  let n = 1 + Rng.int rng 36 in
  let table = make_table rng n in
  let over = random_over rng in
  let items = List.filter supported (random_items rng) in
  let items =
    List.map
      (fun (it : Wf.t) ->
        match it.Wf.func, algorithm with
        (* mode has no tree algorithm: keep Auto except for the Naive pass *)
        | Wf.Mode _, Wf.Naive -> { it with Wf.algorithm = Wf.Naive }
        | Wf.Mode _, _ -> it
        | _ -> { it with Wf.algorithm })
      items
  in
  let expected = Oracle.run table ~over items in
  let got =
    Executor.run
      ~fanout:(2 + Rng.int rng 7)
      ~sample:[| 0; 1; 3; 32 |].(Rng.int rng 4)
      ~task_size:(1 + Rng.int rng 12)
      table ~over items
  in
  List.iter
    (fun (name, exp) ->
      let col = Table.column got name in
      Array.iteri
        (fun i e ->
          let g = Column.get col i in
          if not (value_eq e g) then
            Alcotest.failf "seed %d: %s row %d: oracle=%s engine=%s" seed name i
              (Value.to_string e) (Value.to_string g))
        exp)
    expected

let has_exclusion (over : Window_spec.t) =
  match over.frame with
  | Some f -> f.Window_spec.exclusion <> Window_spec.Exclude_no_others
  | None -> false

let mst_vs_oracle seed () = compare_against_oracle ~algorithm:Wf.Mst ~supported:(fun _ -> true) seed
let auto_vs_oracle seed () = compare_against_oracle ~algorithm:Wf.Auto ~supported:(fun _ -> true) seed

let nocascade_vs_oracle seed () =
  compare_against_oracle ~algorithm:Wf.Mst_no_cascade
    ~supported:(fun it ->
      match it.Wf.func with
      | Wf.Aggregate { distinct = false; _ } -> false (* plain aggs don't cascade *)
      | _ -> true)
    seed

let naive_vs_oracle seed () =
  compare_against_oracle ~algorithm:Wf.Naive ~supported:(fun _ -> true) seed

(* incremental / OST support neither exclusion nor every function; check the
   supported subset on exclusion-free frames *)
let incremental_vs_oracle alg seed () =
  let rng = Rng.create seed in
  let n = 1 + Rng.int rng 30 in
  let table = make_table rng n in
  let over = random_over rng in
  if not (has_exclusion over) then begin
    let items =
      [
        Wf.median ~algorithm:alg ~name:"med" (Expr.Col "v");
        Wf.lead ~algorithm:alg ~order:[ Sort_spec.asc (Expr.Col "v") ] ~name:"ld" (Expr.Col "v");
        Wf.first_value ~algorithm:alg ~order:[ Sort_spec.desc (Expr.Col "v") ] ~name:"fv"
          (Expr.Col "v");
      ]
      @ (if alg = Wf.Incremental || alg = Wf.Incremental_serial then
           [ Wf.count ~algorithm:alg ~distinct:true ~name:"dc" (Expr.Col "k") ]
         else [ Wf.rank ~algorithm:alg ~name:"rnk" [ Sort_spec.asc (Expr.Col "v") ] ])
    in
    let expected = Oracle.run table ~over items in
    let got = Executor.run ~task_size:(1 + Rng.int rng 9) table ~over items in
    List.iter
      (fun (name, exp) ->
        let col = Table.column got name in
        Array.iteri
          (fun i e ->
            if not (value_eq e (Column.get col i)) then
              Alcotest.failf "seed %d: %s row %d: oracle=%s engine=%s" seed name i
                (Value.to_string e)
                (Value.to_string (Column.get col i)))
          exp)
      expected
  end

(* =====================================================================
   Deterministic unit tests
   ===================================================================== *)

let test_running_sum () =
  let table = Table.create [ ("x", Column.ints [| 3; 1; 4; 1; 5 |]) ] in
  let over =
    Window_spec.over
      ~order_by:[ Sort_spec.asc (Expr.Col "x") ]
      ~frame:(Window_spec.rows_between Window_spec.Unbounded_preceding Window_spec.Current_row)
      ()
  in
  let t = Executor.run table ~over [ Wf.sum ~name:"rs" (Expr.Col "x") ] in
  let c = Table.column t "rs" in
  (* sorted: 1 1 3 4 5 → running 1 2 5 9 14; original order 3 1 4 1 5 *)
  let got = Array.init 5 (fun i -> Column.get c i) in
  Alcotest.(check (list string)) "running sums in input order"
    [ "5"; "1"; "9"; "2"; "14" ]
    (Array.to_list (Array.map Value.to_string got))

let test_tpcc_query_shape () =
  (* the §2.4 flagship query: framed count(distinct), rank, first_value,
     lead over an unbounded-preceding frame *)
  let table = Holistic_data.Scenarios.tpcc_results ~rows:200 () in
  let over =
    Window_spec.over
      ~order_by:[ Sort_spec.asc (Expr.Col "submission_date") ]
      ~frame:(Window_spec.range_between Window_spec.Unbounded_preceding Window_spec.Current_row)
      ()
  in
  let items =
    [
      Wf.count ~distinct:true ~name:"competitors" (Expr.Col "dbsystem");
      Wf.rank ~name:"rank_at_submission" [ Sort_spec.desc (Expr.Col "tps") ];
      Wf.first_value ~order:[ Sort_spec.desc (Expr.Col "tps") ] ~name:"best_tps" (Expr.Col "tps");
      Wf.lead ~order:[ Sort_spec.desc (Expr.Col "tps") ] ~name:"next_best" (Expr.Col "tps");
    ]
  in
  let expected = Oracle.run table ~over items in
  let got = Executor.run table ~over items in
  List.iter
    (fun (name, exp) ->
      let col = Table.column got name in
      Array.iteri
        (fun i e ->
          if not (value_eq e (Column.get col i)) then
            Alcotest.failf "%s row %d differs" name i)
        exp)
    expected

let test_empty_table () =
  let table = Table.create [ ("x", Column.ints [||]) ] in
  let over = Window_spec.over ~order_by:[ Sort_spec.asc (Expr.Col "x") ] () in
  let t = Executor.run table ~over [ Wf.median ~name:"m" (Expr.Col "x") ] in
  Alcotest.(check int) "no rows" 0 (Table.nrows t);
  Alcotest.(check (list string)) "column added" [ "x"; "m" ] (Table.column_names t)

let test_single_row () =
  let table = Table.create [ ("x", Column.ints [| 9 |]) ] in
  let over = Window_spec.over ~order_by:[ Sort_spec.asc (Expr.Col "x") ] () in
  let t =
    Executor.run table ~over
      [
        Wf.median ~name:"m" (Expr.Col "x");
        Wf.rank ~name:"r" [ Sort_spec.asc (Expr.Col "x") ];
        Wf.count ~distinct:true ~name:"d" (Expr.Col "x");
      ]
  in
  Alcotest.(check string) "median" "9" (Value.to_string (Column.get (Table.column t "m") 0));
  Alcotest.(check string) "rank" "1" (Value.to_string (Column.get (Table.column t "r") 0));
  Alcotest.(check string) "distinct" "1" (Value.to_string (Column.get (Table.column t "d") 0))

let test_empty_frame_semantics () =
  let table = Table.create [ ("x", Column.ints [| 1; 2; 3 |]) ] in
  let over =
    Window_spec.over
      ~order_by:[ Sort_spec.asc (Expr.Col "x") ]
      ~frame:(Window_spec.rows_between (Window_spec.following 5) (Window_spec.following 9))
      ()
  in
  let t =
    Executor.run table ~over
      [
        Wf.median ~name:"m" (Expr.Col "x");
        Wf.count_star ~name:"c" ();
        Wf.sum ~name:"s" (Expr.Col "x");
        Wf.rank ~name:"r" [ Sort_spec.asc (Expr.Col "x") ];
      ]
  in
  Alcotest.(check string) "median of empty frame" "NULL"
    (Value.to_string (Column.get (Table.column t "m") 0));
  Alcotest.(check string) "count of empty frame" "0"
    (Value.to_string (Column.get (Table.column t "c") 0));
  Alcotest.(check string) "sum of empty frame" "NULL"
    (Value.to_string (Column.get (Table.column t "s") 0));
  Alcotest.(check string) "rank over empty frame" "1"
    (Value.to_string (Column.get (Table.column t "r") 0))

let test_stock_orders_shape () =
  (* §2.2 non-constant bounds: compare engine against the oracle *)
  let table = Holistic_data.Scenarios.stock_orders ~rows:120 () in
  let over =
    Window_spec.over
      ~order_by:[ Sort_spec.asc (Expr.Col "placement_time") ]
      ~frame:
        (Window_spec.range_between Window_spec.Current_row
           (Window_spec.Following (Expr.Col "good_for")))
      ()
  in
  let items = [ Wf.median ~name:"med" (Expr.Col "price") ] in
  let expected = Oracle.run table ~over items in
  let got = Executor.run table ~over items in
  let col = Table.column got "med" in
  List.iter
    (fun (_, exp) ->
      Array.iteri
        (fun i e ->
          if not (value_eq e (Column.get col i)) then Alcotest.failf "stock row %d differs" i)
        exp)
    expected

let test_multi_domain_determinism () =
  (* the probe phase is claimed embarrassingly parallel: a 3-domain pool
     must produce bit-identical results to the serial pool *)
  let table = Holistic_data.Tpch.lineitem ~rows:30_000 () in
  let over =
    Window_spec.over
      ~order_by:[ Sort_spec.asc (Expr.Col "l_shipdate") ]
      ~frame:(Window_spec.rows_between (Window_spec.preceding 500) Window_spec.Current_row)
      ()
  in
  let items =
    [
      Wf.median ~name:"med" (Expr.Col "l_extendedprice");
      Wf.count ~distinct:true ~name:"dc" (Expr.Col "l_partkey");
      Wf.rank ~name:"rnk" [ Sort_spec.desc (Expr.Col "l_extendedprice") ];
    ]
  in
  let pool1 = Holistic_parallel.Task_pool.create 1 in
  let pool3 = Holistic_parallel.Task_pool.create 3 in
  let serial = Executor.run ~pool:pool1 ~task_size:1_000 table ~over items in
  let parallel = Executor.run ~pool:pool3 ~task_size:1_000 table ~over items in
  Holistic_parallel.Task_pool.shutdown pool1;
  Holistic_parallel.Task_pool.shutdown pool3;
  List.iter
    (fun name ->
      let a = Table.column serial name and b = Table.column parallel name in
      for i = 0 to Table.nrows serial - 1 do
        if not (value_eq (Column.get a i) (Column.get b i)) then
          Alcotest.failf "%s row %d differs between 1-domain and 3-domain pools" name i
      done)
    [ "med"; "dc"; "rnk" ]

let test_unsupported_combination () =
  let table = Table.create [ ("x", Column.ints [| 1; 2 |]) ] in
  let over = Window_spec.over ~order_by:[ Sort_spec.asc (Expr.Col "x") ] () in
  Alcotest.(check bool) "raises invalid_arg" true
    (try
       ignore
         (Executor.run table ~over
            [ Wf.sum ~algorithm:Wf.Incremental ~name:"s" (Expr.Col "x") ]);
       false
     with Invalid_argument _ -> true)

let oracle_cases algorithm mk =
  List.init 60 (fun i ->
      Alcotest.test_case (Printf.sprintf "%s seed %d" algorithm i) `Quick (mk (i * 37)))

let () =
  Alcotest.run "window"
    [
      ( "unit",
        [
          Alcotest.test_case "running sum" `Quick test_running_sum;
          Alcotest.test_case "tpcc flagship query" `Quick test_tpcc_query_shape;
          Alcotest.test_case "empty table" `Quick test_empty_table;
          Alcotest.test_case "single row" `Quick test_single_row;
          Alcotest.test_case "empty frames" `Quick test_empty_frame_semantics;
          Alcotest.test_case "non-constant bounds (stock orders)" `Quick test_stock_orders_shape;
          Alcotest.test_case "multi-domain determinism" `Quick test_multi_domain_determinism;
          Alcotest.test_case "unsupported combination" `Quick test_unsupported_combination;
        ] );
      ("oracle-mst", oracle_cases "mst" mst_vs_oracle);
      ("oracle-auto", oracle_cases "auto" auto_vs_oracle);
      ("oracle-no-cascade", oracle_cases "nocascade" nocascade_vs_oracle);
      ("oracle-naive", oracle_cases "naive" naive_vs_oracle);
      ("oracle-incremental", oracle_cases "incremental" (incremental_vs_oracle Wf.Incremental));
      ( "oracle-incremental-serial",
        oracle_cases "incremental-serial" (incremental_vs_oracle Wf.Incremental_serial) );
      ("oracle-ost", oracle_cases "ost" (incremental_vs_oracle Wf.Order_statistic));
    ]
