test/test_storage.ml: Alcotest Array Column Csv Expr Filename Format Fun Holistic_sort Holistic_storage Holistic_util List Sort_spec Sys Table Value
