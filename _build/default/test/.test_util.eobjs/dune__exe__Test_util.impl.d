test/test_util.ml: Alcotest Array Holistic_util List QCheck QCheck_alcotest
