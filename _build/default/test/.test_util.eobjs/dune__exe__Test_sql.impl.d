test/test_sql.ml: Alcotest Array Column Executor Expr Holistic_sql Holistic_storage Holistic_window List QCheck QCheck_alcotest Sort_spec String Table Value Window_func Window_spec
