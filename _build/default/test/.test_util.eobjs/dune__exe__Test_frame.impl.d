test/test_frame.ml: Alcotest Array Column Expr Frame Holistic_storage Holistic_window Sort_spec Table Value Window_spec
