test/test_baselines.ml: Alcotest Array Fun Hashtbl Holistic_baselines Holistic_util Int List Option QCheck QCheck_alcotest Set
