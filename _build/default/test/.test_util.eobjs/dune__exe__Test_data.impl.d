test/test_data.ml: Alcotest Array Column Holistic_data Holistic_storage List Table Value
