test/test_sort.ml: Alcotest Array Holistic_parallel Holistic_sort Holistic_util List QCheck QCheck_alcotest Unix
