test/test_parallel.ml: Alcotest Array Holistic_parallel List
