test/test_core.ml: Alcotest Array Float Holistic_core Holistic_parallel Holistic_util Int List Printf QCheck QCheck_alcotest Set String
