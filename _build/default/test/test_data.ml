open Holistic_storage
module Tpch = Holistic_data.Tpch
module Scenarios = Holistic_data.Scenarios

let test_lineitem_shape () =
  let t = Tpch.lineitem ~rows:5_000 () in
  Alcotest.(check int) "rows" 5_000 (Table.nrows t);
  let ship = Table.column t "l_shipdate" in
  let receipt = Table.column t "l_receiptdate" in
  let price = Table.column t "l_extendedprice" in
  let start = Value.date_of_ymd 1992 1 1 in
  let latest = Value.date_of_ymd 1998 12 31 in
  for i = 0 to 4_999 do
    (match Column.data ship, Column.data receipt with
    | Column.Dates s, Column.Dates r ->
        if s.(i) < start || s.(i) > latest then Alcotest.failf "shipdate out of range at %d" i;
        if r.(i) <= s.(i) || r.(i) > s.(i) + 30 then
          Alcotest.failf "receipt not within 1..30 days of ship at %d" i
    | _ -> Alcotest.fail "date columns expected");
    match Column.get price i with
    | Value.Float p when p > 0.0 -> ()
    | _ -> Alcotest.failf "non-positive price at %d" i
  done

let test_lineitem_determinism () =
  let a = Tpch.lineitem ~seed:5 ~rows:500 () in
  let b = Tpch.lineitem ~seed:5 ~rows:500 () in
  let c = Tpch.lineitem ~seed:6 ~rows:500 () in
  let col t = Column.data (Table.column t "l_extendedprice") in
  Alcotest.(check bool) "same seed, same data" true (col a = col b);
  Alcotest.(check bool) "different seed, different data" true (col a <> col c)

let test_partkey_duplication () =
  (* distinct counts rely on ~30 rows per part key *)
  let t = Tpch.lineitem ~rows:30_000 () in
  match Column.data (Table.column t "l_partkey") with
  | Column.Ints pk ->
      let distinct = List.length (List.sort_uniq compare (Array.to_list pk)) in
      Alcotest.(check bool) "roughly rows/30 part keys" true (distinct > 400 && distinct < 2_000)
  | _ -> Alcotest.fail "int column expected"

let test_orders () =
  let t = Tpch.orders ~rows:1_000 () in
  Alcotest.(check int) "rows" 1_000 (Table.nrows t);
  match Column.data (Table.column t "o_custkey") with
  | Column.Ints ck ->
      let distinct = List.length (List.sort_uniq compare (Array.to_list ck)) in
      Alcotest.(check bool) "~rows/10 customers" true (distinct > 50 && distinct <= 100)
  | _ -> Alcotest.fail "int column expected"

let test_scale_factor () =
  Alcotest.(check int) "SF1" 6_001_215 (Tpch.scale_factor_rows 1.0);
  Alcotest.(check int) "SF0.01" 60_012 (Tpch.scale_factor_rows 0.01)

let test_tpcc_results () =
  let t = Scenarios.tpcc_results ~rows:500 () in
  Alcotest.(check int) "rows" 500 (Table.nrows t);
  match Column.data (Table.column t "tps"), Column.data (Table.column t "submission_date") with
  | Column.Floats tps, Column.Dates d ->
      (* performance should trend upward: average tps of the newest quartile
         beats the oldest quartile *)
      let pairs = Array.init 500 (fun i -> (d.(i), tps.(i))) in
      Array.sort compare pairs;
      let avg lo hi =
        let s = ref 0.0 in
        for i = lo to hi - 1 do
          s := !s +. snd pairs.(i)
        done;
        !s /. float_of_int (hi - lo)
      in
      Alcotest.(check bool) "upward trend" true (avg 375 500 > avg 0 125)
  | _ -> Alcotest.fail "unexpected column types"

let test_stock_orders () =
  let t = Scenarios.stock_orders ~rows:300 () in
  match Column.data (Table.column t "placement_time"), Column.data (Table.column t "good_for") with
  | Column.Ints pt, Column.Ints gf ->
      for i = 1 to 299 do
        if pt.(i) <= pt.(i - 1) then Alcotest.fail "placement times must increase"
      done;
      Alcotest.(check bool) "positive validity windows" true (Array.for_all (fun g -> g > 0) gf)
  | _ -> Alcotest.fail "int columns expected"

let test_zipf () =
  let a = Scenarios.zipf_ints ~n:20_000 ~bound:100 () in
  Alcotest.(check bool) "values in range" true (Array.for_all (fun v -> v >= 0 && v < 100) a);
  let count v = Array.fold_left (fun acc x -> if x = v then acc + 1 else acc) 0 a in
  Alcotest.(check bool) "head heavier than tail" true (count 0 > 10 * count 50)

let test_uniform () =
  let a = Scenarios.uniform_ints ~n:10_000 ~bound:10 () in
  let counts = Array.make 10 0 in
  Array.iter (fun v -> counts.(v) <- counts.(v) + 1) a;
  Array.iter (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 700 && c < 1_300)) counts

let () =
  Alcotest.run "data"
    [
      ( "tpch",
        [
          Alcotest.test_case "lineitem shape" `Quick test_lineitem_shape;
          Alcotest.test_case "determinism" `Quick test_lineitem_determinism;
          Alcotest.test_case "partkey duplication" `Quick test_partkey_duplication;
          Alcotest.test_case "orders" `Quick test_orders;
          Alcotest.test_case "scale factors" `Quick test_scale_factor;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "tpcc results" `Quick test_tpcc_results;
          Alcotest.test_case "stock orders" `Quick test_stock_orders;
          Alcotest.test_case "zipf" `Quick test_zipf;
          Alcotest.test_case "uniform" `Quick test_uniform;
        ] );
    ]
