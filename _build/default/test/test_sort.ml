module Introsort = Holistic_sort.Introsort
module Multiway = Holistic_sort.Multiway
module Parallel_sort = Holistic_sort.Parallel_sort
module Task_pool = Holistic_parallel.Task_pool
module Rng = Holistic_util.Rng

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let test_sort_basic () =
  let a = [| 5; 1; 4; 1; 5; 9; 2; 6 |] in
  let expect = sorted_copy a in
  Introsort.sort a;
  Alcotest.(check (array int)) "sorted" expect a

let test_sort_edges () =
  let empty = [||] in
  Introsort.sort empty;
  Alcotest.(check (array int)) "empty" [||] empty;
  let one = [| 42 |] in
  Introsort.sort one;
  Alcotest.(check (array int)) "singleton" [| 42 |] one;
  let eq = Array.make 1000 7 in
  Introsort.sort eq;
  Alcotest.(check bool) "all equal" true (Array.for_all (( = ) 7) eq)

let test_sort_adversarial_duplicates () =
  (* §5.3: heavy duplication (mostly zeros) must not blow the stack or go
     quadratic — 3-way partitioning handles it. *)
  let rng = Rng.create 3 in
  let n = 200_000 in
  let a = Array.init n (fun _ -> if Rng.int rng 100 = 0 then Rng.int rng 5 else 0) in
  let expect = sorted_copy a in
  let t0 = Unix.gettimeofday () in
  Introsort.sort a;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check (array int)) "sorted" expect a;
  Alcotest.(check bool) "not quadratic" true (dt < 5.0)

let test_sort_range () =
  let a = [| 9; 8; 7; 6; 5; 4 |] in
  Introsort.sort_range a ~lo:1 ~hi:4;
  Alcotest.(check (array int)) "segment only" [| 9; 6; 7; 8; 5; 4 |] a

let sort_oracle =
  QCheck.Test.make ~name:"introsort matches List.sort" ~count:300
    QCheck.(list int)
    (fun l ->
      let a = Array.of_list l in
      Introsort.sort a;
      Array.to_list a = List.sort compare l)

let pair_sort_stability =
  QCheck.Test.make ~name:"pair sort = stable sort by key" ~count:300
    QCheck.(list (int_bound 20))
    (fun l ->
      let key = Array.of_list l in
      let payload = Array.init (Array.length key) (fun i -> i) in
      Introsort.sort_pairs ~key ~payload;
      (* expected: stable sort of (value, original index) *)
      let expect =
        List.sort compare (List.mapi (fun i v -> (v, i)) l)
      in
      List.combine (Array.to_list key) (Array.to_list payload)
      = List.map (fun (v, i) -> (v, i)) expect)

let test_sort_indices_stable () =
  let keys = [| 3; 1; 3; 1; 3 |] in
  let idx = Introsort.sort_indices_by 5 ~cmp:(fun i j -> compare keys.(i) keys.(j)) in
  Alcotest.(check (array int)) "stable ties" [| 1; 3; 0; 2; 4 |] idx

let test_sort_by_comparator () =
  let a = [| 1; 2; 3; 4; 5 |] in
  Introsort.sort_by a ~cmp:(fun x y -> compare y x);
  Alcotest.(check (array int)) "descending" [| 5; 4; 3; 2; 1 |] a

let test_multiway_merge () =
  let src = [| 1; 4; 9; 2; 2; 7; 0; 5 |] in
  let runs = [| { Multiway.lo = 0; hi = 3 }; { Multiway.lo = 3; hi = 6 }; { Multiway.lo = 6; hi = 8 } |] in
  let dst = Array.make 8 (-1) in
  Multiway.merge ~src ~runs ~dst ~dst_pos:0;
  Alcotest.(check (array int)) "merged" [| 0; 1; 2; 2; 4; 5; 7; 9 |] dst

let merge_oracle =
  QCheck.Test.make ~name:"k-way merge matches sort" ~count:300
    QCheck.(pair (list (int_bound 50)) (int_range 1 6))
    (fun (l, k) ->
      let parts = List.init k (fun _ -> ref []) in
      List.iteri (fun i v -> let r = List.nth parts (i mod k) in r := v :: !r) l;
      let sorted_parts = List.map (fun r -> List.sort compare !r) parts in
      let src = Array.of_list (List.concat sorted_parts) in
      let runs = Array.make k { Multiway.lo = 0; hi = 0 } in
      let pos = ref 0 in
      List.iteri
        (fun i p ->
          runs.(i) <- { Multiway.lo = !pos; hi = !pos + List.length p };
          pos := !pos + List.length p)
        sorted_parts;
      let dst = Array.make (Array.length src) 0 in
      Multiway.merge ~src ~runs ~dst ~dst_pos:0;
      Array.to_list dst = List.sort compare l)

let split_at_rank_oracle =
  QCheck.Test.make ~name:"split_at_rank prefixes are a stable-merge prefix" ~count:300
    QCheck.(pair (list (int_bound 10)) (int_range 1 4))
    (fun (l, k) ->
      let n = List.length l in
      let parts = List.init k (fun _ -> ref []) in
      List.iteri (fun i v -> let r = List.nth parts (i mod k) in r := v :: !r) l;
      let sorted_parts = List.map (fun r -> List.sort compare !r) parts in
      let src = Array.of_list (List.concat sorted_parts) in
      let runs = Array.make k { Multiway.lo = 0; hi = 0 } in
      let pos = ref 0 in
      List.iteri
        (fun i p ->
          runs.(i) <- { Multiway.lo = !pos; hi = !pos + List.length p };
          pos := !pos + List.length p)
        sorted_parts;
      QCheck.assume (n >= 0);
      List.for_all
        (fun rank ->
          let cuts = Multiway.split_at_rank ~src ~runs ~rank in
          let taken = ref 0 in
          let ok_bounds = ref true in
          Array.iteri
            (fun i cut ->
              taken := !taken + (cut - runs.(i).Multiway.lo);
              if cut < runs.(i).Multiway.lo || cut > runs.(i).Multiway.hi then ok_bounds := false)
            cuts;
          (* every prefix element must be <= every suffix element *)
          let prefix_max = ref min_int and suffix_min = ref max_int in
          Array.iteri
            (fun i cut ->
              for p = runs.(i).Multiway.lo to cut - 1 do
                if src.(p) > !prefix_max then prefix_max := src.(p)
              done;
              for p = cut to runs.(i).Multiway.hi - 1 do
                if src.(p) < !suffix_min then suffix_min := src.(p)
              done)
            cuts;
          !ok_bounds && !taken = rank && (!prefix_max = min_int || !suffix_min = max_int || !prefix_max <= !suffix_min))
        [ 0; n / 3; n / 2; n ])

let parallel_sort_oracle =
  QCheck.Test.make ~name:"parallel pair sort matches stable sort" ~count:100
    QCheck.(list (int_bound 30))
    (fun l ->
      let pool = Task_pool.create 1 in
      let key = Array.of_list l in
      let payload = Array.init (Array.length key) (fun i -> i) in
      (* tiny task size exercises the multi-run merge path *)
      let runs = Parallel_sort.sort_runs pool ~task_size:3 ~key ~payload () in
      Parallel_sort.merge_runs pool ~key ~payload ~runs;
      Task_pool.shutdown pool;
      let expect = List.sort compare (List.mapi (fun i v -> (v, i)) l) in
      List.combine (Array.to_list key) (Array.to_list payload) = expect)

let test_parallel_sort_large () =
  let pool = Task_pool.create 2 in
  let rng = Rng.create 4 in
  let n = 100_000 in
  let key = Array.init n (fun _ -> Rng.int rng 1000) in
  let expect = sorted_copy key in
  let payload = Array.init n (fun i -> i) in
  Parallel_sort.sort_pairs pool ~key ~payload;
  Alcotest.(check bool) "keys sorted" true (key = expect);
  (* payload permutation must be consistent: payload.(i) indexes an original
     element with the sorted key *)
  let orig = Array.make n 0 in
  Array.iteri (fun i p -> orig.(i) <- p) payload;
  Alcotest.(check bool) "payload is a permutation" true
    (Array.to_list (sorted_copy orig) = List.init n (fun i -> i));
  Task_pool.shutdown pool

let () =
  Alcotest.run "sort"
    [
      ( "introsort",
        [
          Alcotest.test_case "basic" `Quick test_sort_basic;
          Alcotest.test_case "edges" `Quick test_sort_edges;
          Alcotest.test_case "adversarial duplicates" `Slow test_sort_adversarial_duplicates;
          Alcotest.test_case "range" `Quick test_sort_range;
          Alcotest.test_case "stable index sort" `Quick test_sort_indices_stable;
          Alcotest.test_case "comparator sort" `Quick test_sort_by_comparator;
          QCheck_alcotest.to_alcotest sort_oracle;
          QCheck_alcotest.to_alcotest pair_sort_stability;
        ] );
      ( "multiway",
        [
          Alcotest.test_case "merge" `Quick test_multiway_merge;
          QCheck_alcotest.to_alcotest merge_oracle;
          QCheck_alcotest.to_alcotest split_at_rank_oracle;
        ] );
      ( "parallel_sort",
        [
          QCheck_alcotest.to_alcotest parallel_sort_oracle;
          Alcotest.test_case "large" `Quick test_parallel_sort_large;
        ] );
    ]
