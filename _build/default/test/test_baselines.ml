module Ost = Holistic_baselines.Order_statistic_tree
module Inc = Holistic_baselines.Incremental
module Seg = Holistic_baselines.Segment_tree
module Naive = Holistic_baselines.Naive
module Rng = Holistic_util.Rng

(* ------------------------------------------------------------------ *)
(* Counted B-tree vs a sorted-list model                               *)
(* ------------------------------------------------------------------ *)

(* operation sequence: Some v = insert v, None = remove a random present
   element *)
let ost_model_test =
  QCheck.Test.make ~name:"counted B-tree matches sorted-list model" ~count:150
    QCheck.(pair (int_range 2 8) (list (option (int_bound 25))))
    (fun (deg, ops) ->
      let t = Ost.create ~min_degree:deg () in
      let model = ref [] in
      let rng = Rng.create (List.length ops) in
      List.iter
        (fun op ->
          match op with
          | Some v ->
              Ost.insert t v;
              model := v :: !model
          | None -> (
              match !model with
              | [] -> ()
              | l ->
                  let arr = Array.of_list l in
                  let v = arr.(Rng.int rng (Array.length arr)) in
                  Ost.remove t v;
                  let rec drop = function
                    | [] -> []
                    | x :: r -> if x = v then r else x :: drop r
                  in
                  model := drop l))
        ops;
      Ost.check_invariants t;
      let sorted = List.sort compare !model in
      let arr = Array.of_list sorted in
      Ost.size t = Array.length arr
      && Array.for_all (fun i -> Ost.select t i = arr.(i)) (Array.init (Array.length arr) Fun.id)
      && List.for_all
           (fun k -> Ost.rank t k = List.length (List.filter (fun x -> x < k) sorted))
           (List.init 27 (fun k -> k - 1)))

let test_ost_remove_absent () =
  let t = Ost.create () in
  Ost.insert t 5;
  Alcotest.check_raises "remove absent" Not_found (fun () -> Ost.remove t 7);
  Alcotest.(check int) "unchanged" 1 (Ost.size t)

let test_ost_duplicates_heavy () =
  let t = Ost.create ~min_degree:2 () in
  for _ = 1 to 500 do
    Ost.insert t 42
  done;
  Ost.insert t 41;
  Ost.insert t 43;
  Ost.check_invariants t;
  Alcotest.(check int) "size" 502 (Ost.size t);
  Alcotest.(check int) "rank of duplicate" 1 (Ost.rank t 42);
  Alcotest.(check int) "rank above" 501 (Ost.rank t 43);
  Alcotest.(check int) "select middle" 42 (Ost.select t 250);
  for _ = 1 to 500 do
    Ost.remove t 42
  done;
  Ost.check_invariants t;
  Alcotest.(check int) "only sentinels left" 2 (Ost.size t);
  Alcotest.(check bool) "42 gone" false (Ost.mem t 42)

let test_ost_select_bounds () =
  let t = Ost.create () in
  Alcotest.check_raises "empty select"
    (Invalid_argument "Order_statistic_tree.select: out of bounds") (fun () ->
      ignore (Ost.select t 0))

let test_ost_clear () =
  let t = Ost.create () in
  for i = 1 to 100 do
    Ost.insert t i
  done;
  Ost.clear t;
  Alcotest.(check int) "cleared" 0 (Ost.size t);
  Ost.insert t 1;
  Alcotest.(check int) "usable after clear" 1 (Ost.size t)

(* ------------------------------------------------------------------ *)
(* Segment trees                                                       *)
(* ------------------------------------------------------------------ *)

let segment_tree_oracle =
  QCheck.Test.make ~name:"segment tree queries match folds" ~count:300
    QCheck.(list (float_range (-100.) 100.))
    (fun l ->
      let a = Array.of_list l in
      let n = Array.length a in
      let sum = Seg.Float_sum.create a in
      let mn = Seg.Float_min.create a in
      let mx = Seg.Float_max.create a in
      let ok = ref true in
      for lo = -1 to n do
        let hi = min n (lo + 7) in
        let bsum = ref 0.0 and bmin = ref infinity and bmax = ref neg_infinity in
        for i = max lo 0 to hi - 1 do
          bsum := !bsum +. a.(i);
          if a.(i) < !bmin then bmin := a.(i);
          if a.(i) > !bmax then bmax := a.(i)
        done;
        if abs_float (Seg.Float_sum.query sum ~lo ~hi -. !bsum) > 1e-6 then ok := false;
        if Seg.Float_min.query mn ~lo ~hi <> !bmin then ok := false;
        if Seg.Float_max.query mx ~lo ~hi <> !bmax then ok := false
      done;
      !ok)

(* a non-commutative monoid: string concatenation preserves leaf order *)
module Concat = Seg.Make (struct
  type t = string

  let identity = ""
  let combine = ( ^ )
end)

let test_segment_tree_order () =
  let words = [| "a"; "b"; "c"; "d"; "e"; "f"; "g" |] in
  let t = Concat.create 7 (fun i -> words.(i)) in
  Alcotest.(check string) "left-to-right" "bcdef" (Concat.query t ~lo:1 ~hi:6);
  Alcotest.(check string) "full" "abcdefg" (Concat.query t ~lo:0 ~hi:7);
  Alcotest.(check string) "empty" "" (Concat.query t ~lo:3 ~hi:3)

let test_segment_tree_int_sum () =
  let t = Seg.Int_sum.create (Array.init 100 (fun i -> i)) in
  Alcotest.(check int) "sum" (100 * 99 / 2) (Seg.Int_sum.query t ~lo:0 ~hi:100);
  Alcotest.(check int) "clamped" (100 * 99 / 2) (Seg.Int_sum.query t ~lo:(-5) ~hi:200)

(* ------------------------------------------------------------------ *)
(* Incremental state (Wesley & Xu)                                     *)
(* ------------------------------------------------------------------ *)

let test_distinct_count_state () =
  let dc = Inc.Distinct_count.create () in
  Inc.Distinct_count.add dc 1;
  Inc.Distinct_count.add dc 1;
  Inc.Distinct_count.add dc 2;
  Alcotest.(check int) "two distinct" 2 (Inc.Distinct_count.count dc);
  Inc.Distinct_count.remove dc 1;
  Alcotest.(check int) "still two" 2 (Inc.Distinct_count.count dc);
  Inc.Distinct_count.remove dc 1;
  Alcotest.(check int) "one left" 1 (Inc.Distinct_count.count dc);
  Alcotest.check_raises "remove absent"
    (Invalid_argument "Incremental.Distinct_count.remove: absent value") (fun () ->
      Inc.Distinct_count.remove dc 1)

let sorted_window_model =
  QCheck.Test.make ~name:"sorted window matches sorted-list model" ~count:200
    QCheck.(list (option (int_bound 15)))
    (fun ops ->
      let sw = Inc.Sorted_window.create () in
      let model = ref [] in
      let rng = Rng.create 5 in
      List.iter
        (fun op ->
          match op with
          | Some v ->
              Inc.Sorted_window.add sw v;
              model := v :: !model
          | None -> (
              match !model with
              | [] -> ()
              | l ->
                  let arr = Array.of_list l in
                  let v = arr.(Rng.int rng (Array.length arr)) in
                  Inc.Sorted_window.remove sw v;
                  let rec drop = function
                    | [] -> []
                    | x :: r -> if x = v then r else x :: drop r
                  in
                  model := drop l))
        ops;
      let sorted = List.sort compare !model in
      Inc.Sorted_window.size sw = List.length sorted
      && List.for_all
           (fun (i, v) -> Inc.Sorted_window.select sw i = v)
           (List.mapi (fun i v -> (i, v)) sorted)
      && List.for_all
           (fun k -> Inc.Sorted_window.rank sw k = List.length (List.filter (fun x -> x < k) sorted))
           (List.init 17 (fun k -> k - 1)))

let mode_state_model =
  QCheck.Test.make ~name:"mode buckets match counting model" ~count:200
    QCheck.(list (option (int_bound 8)))
    (fun ops ->
      let st = Inc.Mode.create () in
      let model = Hashtbl.create 8 in
      let rng = Rng.create 11 in
      let ok = ref true in
      List.iter
        (fun op ->
          (match op with
          | Some v ->
              Inc.Mode.add st v;
              Hashtbl.replace model v (1 + Option.value (Hashtbl.find_opt model v) ~default:0)
          | None -> (
              let present = Hashtbl.fold (fun k c acc -> if c > 0 then k :: acc else acc) model [] in
              match present with
              | [] -> ()
              | l ->
                  let v = List.nth l (Rng.int rng (List.length l)) in
                  Inc.Mode.remove st v;
                  Hashtbl.replace model v (Hashtbl.find model v - 1)));
          let max_c = Hashtbl.fold (fun _ c acc -> max c acc) model 0 in
          let size = Hashtbl.fold (fun _ c acc -> acc + c) model 0 in
          if Inc.Mode.max_count st <> max_c || Inc.Mode.size st <> size then ok := false;
          let best = Inc.Mode.mode st ~better:(fun a b -> a < b) in
          let expect =
            Hashtbl.fold
              (fun k c acc -> if c = max_c && c > 0 then (match acc with None -> Some k | Some b -> Some (min b k)) else acc)
              model None
          in
          if best <> expect then ok := false)
        ops;
      !ok)

let test_frame_driver_non_monotonic () =
  (* frames jumping around: drivers must re-add/remove correctly *)
  let vals = [| 3; 1; 4; 1; 5; 9; 2; 6 |] in
  let frames = [| (0, 3); (5, 8); (2, 6); (2, 6); (0, 1); (7, 8); (0, 8); (4, 4) |] in
  let dc = Inc.Distinct_count.create () in
  let out = Array.make 8 (-1) in
  Inc.Frame_driver.run ~n:8
    ~frame:(fun i -> frames.(i))
    ~add:(fun j -> Inc.Distinct_count.add dc vals.(j))
    ~remove:(fun j -> Inc.Distinct_count.remove dc vals.(j))
    ~result:(fun i -> out.(i) <- Inc.Distinct_count.count dc)
    ~reset:(fun () -> Inc.Distinct_count.clear dc)
    ~lo:0 ~hi:8;
  let expect =
    Array.map
      (fun (lo, hi) ->
        let module IS = Set.Make (Int) in
        let s = ref IS.empty in
        for i = lo to hi - 1 do
          s := IS.add vals.(i) !s
        done;
        IS.cardinal !s)
      frames
  in
  Alcotest.(check (array int)) "per-row distinct counts" expect out

let test_frame_driver_clamps () =
  let out = ref [] in
  let cur = ref 0 in
  Inc.Frame_driver.run ~n:3
    ~frame:(fun i -> (i - 10, i + 10))
    ~add:(fun _ -> incr cur)
    ~remove:(fun _ -> decr cur)
    ~result:(fun _ -> out := !cur :: !out)
    ~reset:(fun () -> cur := 0)
    ~lo:0 ~hi:3;
  Alcotest.(check (list int)) "clamped to n" [ 3; 3; 3 ] (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Naive helpers                                                       *)
(* ------------------------------------------------------------------ *)

let quickselect_oracle =
  QCheck.Test.make ~name:"quickselect matches sort" ~count:300
    QCheck.(list_of_size QCheck.Gen.(int_range 1 60) (int_bound 20))
    (fun l ->
      let a = Array.of_list l in
      let n = Array.length a in
      let scratch = Array.make n 0 in
      let sorted = List.sort compare l in
      List.for_all
        (fun (k, v) -> Naive.select_kth a ~scratch ~ranges:[| (0, n) |] ~k = v)
        (List.mapi (fun k v -> (k, v)) sorted))

let test_naive_multi_range () =
  let a = [| 9; 1; 8; 2; 7; 3; 6; 4 |] in
  let scratch = Array.make 8 0 in
  let ranges = [| (0, 2); (4, 6) |] in
  (* covered values: 9 1 7 3 *)
  Alcotest.(check int) "kth across ranges" 3 (Naive.select_kth a ~scratch ~ranges ~k:1);
  Alcotest.(check int) "count_less" 2 (Naive.count_less a ~ranges ~less_than:7);
  Alcotest.(check int) "distinct" 4 (Naive.distinct_count a ~ranges);
  Alcotest.(check int) "distinct below" 2 (Naive.distinct_below a ~ranges ~key:7)

let () =
  Alcotest.run "baselines"
    [
      ( "order_statistic_tree",
        [
          QCheck_alcotest.to_alcotest ost_model_test;
          Alcotest.test_case "remove absent" `Quick test_ost_remove_absent;
          Alcotest.test_case "duplicate heavy" `Quick test_ost_duplicates_heavy;
          Alcotest.test_case "select bounds" `Quick test_ost_select_bounds;
          Alcotest.test_case "clear" `Quick test_ost_clear;
        ] );
      ( "segment_tree",
        [
          QCheck_alcotest.to_alcotest segment_tree_oracle;
          Alcotest.test_case "non-commutative order" `Quick test_segment_tree_order;
          Alcotest.test_case "int sum" `Quick test_segment_tree_int_sum;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "distinct count state" `Quick test_distinct_count_state;
          QCheck_alcotest.to_alcotest sorted_window_model;
          QCheck_alcotest.to_alcotest mode_state_model;
          Alcotest.test_case "non-monotonic driver" `Quick test_frame_driver_non_monotonic;
          Alcotest.test_case "driver clamps frames" `Quick test_frame_driver_clamps;
        ] );
      ( "naive",
        [
          QCheck_alcotest.to_alcotest quickselect_oracle;
          Alcotest.test_case "multi-range helpers" `Quick test_naive_multi_range;
        ] );
    ]
