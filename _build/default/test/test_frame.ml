(* Direct unit tests of per-row frame-bound computation (Frame module);
   end-to-end frame semantics are additionally covered by the window oracle
   in test_window.ml. *)

open Holistic_storage
open Holistic_window

let mk_table () =
  Table.create
    [
      ("t", Column.ints [| 10; 20; 20; 30; 40; 50 |]);
      ("v", Column.of_values [| Value.Int 1; Value.Int 2; Value.Null; Value.Int 4; Value.Null; Value.Int 6 |]);
      ("off", Column.ints [| 0; 1; 2; 3; 0; 1 |]);
    ]

let rows = [| 0; 1; 2; 3; 4; 5 |] (* already in t order *)

let bounds frame_spec order =
  let table = mk_table () in
  let spec = Window_spec.over ~order_by:order ~frame:frame_spec () in
  let f = Frame.compute table ~spec ~rows in
  Array.init 6 (fun r -> (Frame.start_ f r, Frame.end_ f r))

let t_asc = [ Sort_spec.asc (Expr.Col "t") ]

let ip = Alcotest.(pair int int)

let test_rows_constant () =
  let b = bounds (Window_spec.rows_between (Window_spec.preceding 1) (Window_spec.following 1)) t_asc in
  Alcotest.(check (array ip)) "sliding rows"
    [| (0, 2); (0, 3); (1, 4); (2, 5); (3, 6); (4, 6) |]
    b

let test_rows_expression_bounds () =
  (* start = r - off(r): per-row offsets *)
  let b =
    bounds (Window_spec.rows_between (Window_spec.Preceding (Expr.Col "off")) Window_spec.Current_row) t_asc
  in
  Alcotest.(check (array ip)) "per-row offsets"
    [| (0, 1); (0, 2); (0, 3); (0, 4); (4, 5); (4, 6) |]
    b

let test_rows_negative_offset_rejected () =
  let table = mk_table () in
  let spec =
    Window_spec.over ~order_by:t_asc
      ~frame:
        (Window_spec.rows_between
           (Window_spec.Preceding (Expr.Const (Value.Int (-1))))
           Window_spec.Current_row)
      ()
  in
  Alcotest.check_raises "negative offset" (Invalid_argument "Frame: negative frame offset")
    (fun () -> ignore (Frame.compute table ~spec ~rows))

let test_range_value_bounds () =
  (* t values: 10 20 20 30 40 50; RANGE 10 preceding .. current row *)
  let b = bounds (Window_spec.range_between (Window_spec.preceding 10) Window_spec.Current_row) t_asc in
  Alcotest.(check (array ip)) "value windows"
    [| (0, 1); (0, 3); (0, 3); (1, 4); (3, 5); (4, 6) |]
    b

let test_range_current_row_peers () =
  (* CURRENT ROW end includes the whole peer group (the two 20s) *)
  let b = bounds (Window_spec.range_between Window_spec.Unbounded_preceding Window_spec.Current_row) t_asc in
  Alcotest.(check (array ip)) "peer-extended frames"
    [| (0, 1); (0, 3); (0, 3); (0, 4); (0, 5); (0, 6) |]
    b

let test_range_desc () =
  let t_desc = [ Sort_spec.desc (Expr.Col "t") ] in
  let rows_desc = [| 5; 4; 3; 2; 1; 0 |] in
  let table = mk_table () in
  let spec =
    Window_spec.over ~order_by:t_desc
      ~frame:(Window_spec.range_between (Window_spec.preceding 10) Window_spec.Current_row)
      ()
  in
  let f = Frame.compute table ~spec ~rows:rows_desc in
  (* order: 50 40 30 20 20 10; "10 preceding" = values up to 10 larger *)
  Alcotest.(check (array ip)) "descending range"
    [| (0, 1); (0, 2); (1, 3); (2, 5); (2, 5); (3, 6) |]
    (Array.init 6 (fun r -> (Frame.start_ f r, Frame.end_ f r)))

let test_range_nulls_peer_group () =
  (* order by v asc: values 1 2 4 6 NULL NULL (nulls last); offset bounds on
     the null rows frame their peer group *)
  let table = mk_table () in
  let v_asc = [ Sort_spec.asc (Expr.Col "v") ] in
  let rows_v = [| 0; 1; 3; 5; 2; 4 |] in
  let spec =
    Window_spec.over ~order_by:v_asc
      ~frame:(Window_spec.range_between (Window_spec.preceding 1) Window_spec.Current_row)
      ()
  in
  let f = Frame.compute table ~spec ~rows:rows_v in
  Alcotest.(check ip) "null row frames its null peers" (4, 6)
    (Frame.start_ f 4, Frame.end_ f 4);
  Alcotest.(check ip) "non-null row ignores nulls" (0, 2) (Frame.start_ f 1, Frame.end_ f 1)

let test_groups_mode () =
  let b =
    bounds (Window_spec.groups_between (Window_spec.preceding 1) Window_spec.Current_row) t_asc
  in
  (* groups: {10} {20,20} {30} {40} {50} *)
  Alcotest.(check (array ip)) "group windows"
    [| (0, 1); (0, 3); (0, 3); (1, 4); (3, 5); (4, 6) |]
    b

let test_exclusion_ranges () =
  let table = mk_table () in
  let mk exclusion =
    let spec =
      Window_spec.over ~order_by:t_asc
        ~frame:
          (Window_spec.rows_between ~exclusion Window_spec.Unbounded_preceding
             Window_spec.Unbounded_following)
        ()
    in
    Frame.compute table ~spec ~rows
  in
  let f = mk Window_spec.Exclude_current_row in
  Alcotest.(check (array ip)) "current row excluded" [| (0, 2); (3, 6) |] (Frame.ranges f 2);
  Alcotest.(check int) "covered" 5 (Frame.covered f 2);
  let f = mk Window_spec.Exclude_group in
  (* rows 1 and 2 are peers (t=20) *)
  Alcotest.(check (array ip)) "group excluded" [| (0, 1); (3, 6) |] (Frame.ranges f 1);
  let f = mk Window_spec.Exclude_ties in
  (* peers of row 1 are {1, 2}; dropping the ties leaves 0,1,3,4,5 with the
     pieces around the kept row coalescing into (0,2) *)
  Alcotest.(check (array ip)) "ties excluded, self kept" [| (0, 2); (3, 6) |] (Frame.ranges f 1);
  let f = mk Window_spec.Exclude_no_others in
  Alcotest.(check (array ip)) "no exclusion" [| (0, 6) |] (Frame.ranges f 1)

let test_exclusion_at_edges () =
  let table = mk_table () in
  let spec =
    Window_spec.over ~order_by:t_asc
      ~frame:
        (Window_spec.rows_between ~exclusion:Window_spec.Exclude_current_row
           Window_spec.Current_row (Window_spec.following 2))
      ()
  in
  let f = Frame.compute table ~spec ~rows in
  (* frame [r, r+3) minus r = [r+1, r+3) — a hole at the edge leaves one range *)
  Alcotest.(check (array ip)) "edge hole" [| (1, 3) |] (Frame.ranges f 0);
  Alcotest.(check (array ip)) "last row: empty" [||] (Frame.ranges f 5)

let test_empty_frame () =
  let b =
    bounds (Window_spec.rows_between (Window_spec.following 3) (Window_spec.preceding 3)) t_asc
  in
  Array.iteri
    (fun r (s, e) -> if s <> e then Alcotest.failf "row %d: expected empty frame, got (%d,%d)" r s e)
    b

let test_unbounded_inversions () =
  (* start=UNBOUNDED FOLLOWING / end=UNBOUNDED PRECEDING yield empty frames *)
  let b =
    bounds
      (Window_spec.rows_between Window_spec.Unbounded_following Window_spec.Unbounded_following)
      t_asc
  in
  Alcotest.(check ip) "start at np" (6, 6) b.(0);
  let b =
    bounds
      (Window_spec.rows_between Window_spec.Unbounded_preceding Window_spec.Unbounded_preceding)
      t_asc
  in
  Alcotest.(check ip) "end at 0" (0, 0) b.(3)

let test_range_requires_single_key () =
  let table = mk_table () in
  let spec =
    Window_spec.over
      ~order_by:[ Sort_spec.asc (Expr.Col "t"); Sort_spec.asc (Expr.Col "v") ]
      ~frame:(Window_spec.range_between (Window_spec.preceding 1) Window_spec.Current_row)
      ()
  in
  Alcotest.check_raises "multi-key range with offsets"
    (Invalid_argument "Frame: RANGE with offsets requires exactly one ORDER BY key") (fun () ->
      ignore (Frame.compute table ~spec ~rows))

let test_default_frames () =
  let table = mk_table () in
  (* with ORDER BY: range unbounded preceding .. current row (peers) *)
  let f =
    Frame.compute table ~spec:(Window_spec.over ~order_by:t_asc ()) ~rows
  in
  Alcotest.(check ip) "default ordered frame" (0, 3) (Frame.start_ f 1, Frame.end_ f 1);
  (* without ORDER BY: the whole partition *)
  let f = Frame.compute table ~spec:(Window_spec.over ()) ~rows in
  Alcotest.(check ip) "default unordered frame" (0, 6) (Frame.start_ f 3, Frame.end_ f 3)

let () =
  Alcotest.run "frame"
    [
      ( "rows",
        [
          Alcotest.test_case "constant offsets" `Quick test_rows_constant;
          Alcotest.test_case "expression offsets" `Quick test_rows_expression_bounds;
          Alcotest.test_case "negative offset rejected" `Quick test_rows_negative_offset_rejected;
        ] );
      ( "range",
        [
          Alcotest.test_case "value bounds" `Quick test_range_value_bounds;
          Alcotest.test_case "current row peers" `Quick test_range_current_row_peers;
          Alcotest.test_case "descending" `Quick test_range_desc;
          Alcotest.test_case "null peer groups" `Quick test_range_nulls_peer_group;
          Alcotest.test_case "requires single key" `Quick test_range_requires_single_key;
        ] );
      ("groups", [ Alcotest.test_case "group offsets" `Quick test_groups_mode ]);
      ( "exclusion",
        [
          Alcotest.test_case "all modes" `Quick test_exclusion_ranges;
          Alcotest.test_case "edge holes" `Quick test_exclusion_at_edges;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "inverted bounds" `Quick test_empty_frame;
          Alcotest.test_case "unbounded inversions" `Quick test_unbounded_inversions;
          Alcotest.test_case "default frames" `Quick test_default_frames;
        ] );
    ]
