module Bs = Holistic_util.Binary_search
module Bitset = Holistic_util.Bitset
module Int_vec = Holistic_util.Int_vec
module Rng = Holistic_util.Rng

let test_lower_bound () =
  let a = [| 1; 3; 3; 3; 7; 9 |] in
  Alcotest.(check int) "before all" 0 (Bs.lower_bound a ~lo:0 ~hi:6 0);
  Alcotest.(check int) "first equal" 1 (Bs.lower_bound a ~lo:0 ~hi:6 3);
  Alcotest.(check int) "past equal" 4 (Bs.upper_bound a ~lo:0 ~hi:6 3);
  Alcotest.(check int) "after all" 6 (Bs.lower_bound a ~lo:0 ~hi:6 100);
  Alcotest.(check int) "within segment" 4 (Bs.lower_bound a ~lo:4 ~hi:6 2);
  Alcotest.(check int) "empty segment" 3 (Bs.lower_bound a ~lo:3 ~hi:3 0)

let lower_bound_oracle =
  QCheck.Test.make ~name:"lower_bound matches linear scan" ~count:500
    QCheck.(pair (list small_int) small_int)
    (fun (l, x) ->
      let a = Array.of_list (List.sort compare l) in
      let n = Array.length a in
      let expect =
        let rec go i = if i < n && a.(i) < x then go (i + 1) else i in
        go 0
      in
      Bs.lower_bound a ~lo:0 ~hi:n x = expect)

let test_bitset_basic () =
  let b = Bitset.create 70 in
  Alcotest.(check int) "empty count" 0 (Bitset.count b);
  Bitset.set b 0;
  Bitset.set b 69;
  Bitset.set b 33;
  Alcotest.(check bool) "get set" true (Bitset.get b 33);
  Alcotest.(check bool) "get unset" false (Bitset.get b 34);
  Alcotest.(check int) "count" 3 (Bitset.count b);
  Bitset.clear b 33;
  Alcotest.(check int) "count after clear" 2 (Bitset.count b);
  Bitset.set_all b;
  Alcotest.(check int) "set_all respects capacity" 70 (Bitset.count b);
  Bitset.clear_all b;
  Alcotest.(check int) "clear_all" 0 (Bitset.count b)

let test_bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "negative index" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.set b (-1));
  Alcotest.check_raises "past end" (Invalid_argument "Bitset: index out of bounds") (fun () ->
      ignore (Bitset.get b 8))

let test_bitset_union_iter () =
  let a = Bitset.create 20 and b = Bitset.create 20 in
  Bitset.set a 1;
  Bitset.set a 5;
  Bitset.set b 5;
  Bitset.set b 13;
  let u = Bitset.union a b in
  let collected = ref [] in
  Bitset.iter_set u (fun i -> collected := i :: !collected);
  Alcotest.(check (list int)) "union members" [ 1; 5; 13 ] (List.rev !collected)

let test_int_vec () =
  let v = Int_vec.create () in
  for i = 0 to 99 do
    Int_vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Int_vec.length v);
  Alcotest.(check int) "get" 81 (Int_vec.get v 9);
  Int_vec.set v 9 (-1);
  Alcotest.(check int) "set" (-1) (Int_vec.get v 9);
  Alcotest.(check int) "pop" 9801 (Int_vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Int_vec.length v);
  Alcotest.(check int) "to_array" 99 (Array.length (Int_vec.to_array v));
  Int_vec.clear v;
  Alcotest.(check int) "clear" 0 (Int_vec.length v)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done;
  let c = Rng.create 8 in
  Alcotest.(check bool) "different seed, different stream" true (Rng.next a <> Rng.next c)

let rng_bounds =
  QCheck.Test.make ~name:"Rng.int stays within bounds" ~count:1000
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_rng_split () =
  let r = Rng.create 9 in
  let s = Rng.split r in
  (* split stream must differ from parent's continuation *)
  Alcotest.(check bool) "split independent" true (Rng.next s <> Rng.next (Rng.create 9))

let () =
  Alcotest.run "util"
    [
      ( "binary_search",
        [
          Alcotest.test_case "bounds" `Quick test_lower_bound;
          QCheck_alcotest.to_alcotest lower_bound_oracle;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "union/iter" `Quick test_bitset_union_iter;
        ] );
      ("int_vec", [ Alcotest.test_case "basic" `Quick test_int_vec ]);
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split" `Quick test_rng_split;
          QCheck_alcotest.to_alcotest rng_bounds;
        ] );
    ]
