module Mst = Holistic_core.Mst
module Prev = Holistic_core.Prev_occurrence
module Ann = Holistic_core.Annotated_mst
module Rank_encode = Holistic_core.Rank_encode
module Range_tree = Holistic_core.Range_tree
module Rng = Holistic_util.Rng
module IS = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Brute-force oracles                                                 *)
(* ------------------------------------------------------------------ *)

let brute_count a lo hi t =
  let acc = ref 0 in
  for i = max lo 0 to min hi (Array.length a) - 1 do
    if a.(i) < t then incr acc
  done;
  !acc

let in_ranges ranges v = Array.exists (fun (l, h) -> v >= l && v < h) ranges

let brute_select a ranges nth =
  let m = ref nth and res = ref None in
  Array.iter
    (fun v -> if !res = None && in_ranges ranges v then if !m = 0 then res := Some v else decr m)
    a;
  !res

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* array of small ints plus tree parameters, covering ragged trees, all
   fanouts and disabled cascading *)
let tree_case =
  QCheck.make
    ~print:(fun (a, f, k) ->
      Printf.sprintf "n=%d f=%d k=%d [%s]" (Array.length a) f k
        (String.concat ";" (Array.to_list (Array.map string_of_int a))))
    QCheck.Gen.(
      let* n = int_bound 250 in
      let* maxv = int_range 1 40 in
      let* a = array_size (return n) (int_bound maxv) in
      let* f = oneofl [ 2; 3; 4; 8; 16; 32; 64 ] in
      let* k = oneofl [ 0; 1; 2; 4; 8; 32; 100 ] in
      return (a, f, k))

let count_matches_oracle =
  QCheck.Test.make ~name:"Mst.count matches linear scan" ~count:300 tree_case (fun (a, f, k) ->
      let n = Array.length a in
      let t = Mst.create ~fanout:f ~sample:k a in
      let rng = Rng.create (n + f + k) in
      let ok = ref true in
      for _ = 1 to 30 do
        let lo = Rng.int rng (n + 2) - 1 and hi = Rng.int rng (n + 2) - 1 in
        let th = Rng.int rng 44 - 2 in
        if Mst.count t ~lo ~hi ~less_than:th <> brute_count a lo hi th then ok := false
      done;
      !ok)

let select_matches_oracle =
  QCheck.Test.make ~name:"Mst.select matches linear scan" ~count:300 tree_case (fun (a, f, k) ->
      let n = Array.length a in
      QCheck.assume (n > 0);
      let t = Mst.create ~fanout:f ~sample:k a in
      let rng = Rng.create (n + (3 * f) + k) in
      let ok = ref true in
      for _ = 1 to 20 do
        let l1 = Rng.int rng 40 in
        let h1 = l1 + Rng.int rng 20 in
        let l2 = h1 + Rng.int rng 5 in
        let h2 = l2 + Rng.int rng 20 in
        let l3 = h2 + Rng.int rng 5 in
        let h3 = l3 + Rng.int rng 10 in
        let ranges =
          match Rng.int rng 3 with
          | 0 -> [| (l1, h1) |]
          | 1 -> [| (l1, h1); (l2, h2) |]
          | _ -> [| (l1, h1); (l2, h2); (l3, h3) |]
        in
        let total = Mst.count_value_ranges t ~ranges in
        let brute_total = Array.fold_left (fun acc v -> if in_ranges ranges v then acc + 1 else acc) 0 a in
        if total <> brute_total then ok := false
        else if total > 0 then begin
          let nth = Rng.int rng total in
          match brute_select a ranges nth with
          | Some expect when Mst.select t ~ranges ~nth = expect -> ()
          | _ -> ok := false
        end
      done;
      !ok)

let test_select_out_of_bounds () =
  let t = Mst.create [| 1; 2; 3 |] in
  Alcotest.check_raises "nth too large"
    (Invalid_argument "Mst.select: nth=3 out of bounds (3 qualifying)") (fun () ->
      ignore (Mst.select t ~ranges:[| (0, 10) |] ~nth:3))

let test_empty_and_singleton () =
  let empty = Mst.create [||] in
  Alcotest.(check int) "count on empty" 0 (Mst.count empty ~lo:0 ~hi:10 ~less_than:5);
  let one = Mst.create [| 7 |] in
  Alcotest.(check int) "count singleton hit" 1 (Mst.count one ~lo:0 ~hi:1 ~less_than:8);
  Alcotest.(check int) "count singleton miss" 0 (Mst.count one ~lo:0 ~hi:1 ~less_than:7);
  Alcotest.(check int) "select singleton" 7 (Mst.select one ~ranges:[| (7, 8) |] ~nth:0)

let test_negative_values () =
  let a = [| min_int; -5; 0; 5; max_int |] in
  let t = Mst.create ~fanout:2 ~sample:1 a in
  Alcotest.(check int) "count over extremes" 2 (Mst.count t ~lo:0 ~hi:5 ~less_than:0);
  Alcotest.(check int) "select min_int" min_int
    (Mst.select t ~ranges:[| (min_int, 0) |] ~nth:0)

let test_stats_and_formula () =
  let n = 1000 in
  let a = Array.init n (fun i -> i * 7 mod 100) in
  let t = Mst.create ~fanout:4 ~sample:4 a in
  let s = Mst.stats t in
  (* 4^5 = 1024 >= 1000: levels 0..5 *)
  Alcotest.(check int) "level elements" (6 * n) s.Mst.level_elements;
  Alcotest.(check bool) "cursor elements positive" true (s.Mst.cursor_elements > 0);
  Alcotest.(check int) "bytes" (8 * (s.Mst.level_elements + s.Mst.cursor_elements)) s.Mst.heap_bytes;
  let f = Mst.element_count_formula ~n:1000 ~fanout:4 ~sample:4 in
  Alcotest.(check int) "formula levels + cursors" ((6 * 1000) + (5 * 1000)) f

let test_payload_requires_flag () =
  let t = Mst.create [| 1; 2 |] in
  Alcotest.check_raises "payload_levels without flag"
    (Invalid_argument "Mst.payload_levels: tree was built without ~track_payload") (fun () ->
      ignore (Mst.payload_levels t))

let test_bad_params () =
  Alcotest.check_raises "fanout < 2" (Invalid_argument "Mst.create: fanout must be >= 2")
    (fun () -> ignore (Mst.create ~fanout:1 [| 1 |]));
  Alcotest.check_raises "negative sample" (Invalid_argument "Mst.create: sample must be >= 0")
    (fun () -> ignore (Mst.create ~sample:(-1) [| 1 |]))

let test_multi_domain_build () =
  (* run-level build tasks are independent: a 3-domain pool must produce a
     bit-identical tree *)
  let module Tp = Holistic_parallel.Task_pool in
  let a = Array.init 50_000 (fun i -> (i * 7919) mod 1234) in
  let p1 = Tp.create 1 and p3 = Tp.create 3 in
  let t1 = Mst.create ~pool:p1 ~fanout:4 ~sample:4 a in
  let t3 = Mst.create ~pool:p3 ~fanout:4 ~sample:4 a in
  Tp.shutdown p1;
  Tp.shutdown p3;
  let i1 = Mst.internals t1 and i3 = Mst.internals t3 in
  Alcotest.(check bool) "levels identical" true (i1.Mst.int_levels = i3.Mst.int_levels);
  Alcotest.(check bool) "cursors identical" true (i1.Mst.int_cursors = i3.Mst.int_cursors)

(* ------------------------------------------------------------------ *)
(* 32-bit compact trees (§5.1)                                         *)
(* ------------------------------------------------------------------ *)

module Compact = Holistic_core.Mst_compact

let compact_agrees =
  QCheck.Test.make ~name:"32-bit tree answers every query like the 64-bit one" ~count:150
    tree_case
    (fun (a, f, k) ->
      let n = Array.length a in
      let t = Mst.create ~fanout:f ~sample:k a in
      let c = Compact.of_mst t in
      let rng = Rng.create (n + f + (13 * k)) in
      let ok = ref (Compact.length c = n) in
      for _ = 1 to 25 do
        let lo = Rng.int rng (n + 2) - 1 and hi = Rng.int rng (n + 2) - 1 in
        let th = Rng.int rng 44 - 2 in
        if Compact.count c ~lo ~hi ~less_than:th <> Mst.count t ~lo ~hi ~less_than:th then
          ok := false;
        let ranges = [| (0, max 1 (th + 2)) |] in
        let total = Mst.count_value_ranges t ~ranges in
        if Compact.count_value_ranges c ~ranges <> total then ok := false;
        if total > 0 then begin
          let nth = Rng.int rng total in
          if Compact.select c ~ranges ~nth <> Mst.select t ~ranges ~nth then ok := false
        end
      done;
      !ok)

let test_compact_memory () =
  let a = Array.init 5_000 (fun i -> i * 13 mod 700) in
  let t = Mst.create a in
  let c = Compact.of_mst t in
  let full = (Mst.stats t).Mst.heap_bytes in
  Alcotest.(check int) "exactly half the footprint" full (2 * Compact.heap_bytes c)

let test_compact_range_check () =
  let t = Mst.create [| max_int |] in
  Alcotest.check_raises "values too wide"
    (Invalid_argument "Mst_compact.of_mst: value exceeds 32-bit range") (fun () ->
      ignore (Compact.of_mst t))

(* ------------------------------------------------------------------ *)
(* Prev occurrence (Algorithm 1)                                       *)
(* ------------------------------------------------------------------ *)

let prev_occurrence_oracle =
  QCheck.Test.make ~name:"prev-occurrence encoding matches scan" ~count:300
    QCheck.(array (int_bound 10))
    (fun a ->
      let prev = Prev.compute a in
      let ok = ref true in
      Array.iteri
        (fun i p ->
          let expect =
            let r = ref 0 in
            for j = 0 to i - 1 do
              if a.(j) = a.(i) then r := j + 1
            done;
            !r
          in
          if p <> expect then ok := false)
        prev;
      !ok)

let distinct_frame_identity =
  QCheck.Test.make ~name:"distinct count = qualifying back-references" ~count:200
    QCheck.(pair (array_of_size QCheck.Gen.(int_range 1 120) (int_bound 8)) (pair small_nat small_nat))
    (fun (a, (x, y)) ->
      let n = Array.length a in
      let lo = x mod n and hi = y mod n in
      let lo, hi = (min lo hi, max lo hi) in
      let prev = Prev.compute a in
      let expect =
        let s = ref IS.empty in
        for i = lo to hi do
          s := IS.add a.(i) !s
        done;
        IS.cardinal !s
      in
      Prev.distinct_in_frame prev ~lo ~hi = expect
      && Mst.count (Mst.create prev) ~lo ~hi:(hi + 1) ~less_than:(lo + 1) = expect)

(* ------------------------------------------------------------------ *)
(* Annotated trees (§4.3)                                              *)
(* ------------------------------------------------------------------ *)

let annotated_sum_oracle =
  QCheck.Test.make ~name:"annotated tree computes SUM DISTINCT" ~count:200 tree_case
    (fun (a, f, k) ->
      let n = Array.length a in
      QCheck.assume (n > 0);
      let prev = Prev.compute a in
      let values = Array.map (fun v -> float_of_int (v * 3)) a in
      let ann = Ann.Float_sum.create ~fanout:f ~sample:k ~keys:prev ~values () in
      let rng = Rng.create (n + f) in
      let ok = ref true in
      for _ = 1 to 20 do
        let lo = Rng.int rng n in
        let hi = lo + 1 + Rng.int rng (n - lo) in
        let expect =
          let s = ref IS.empty in
          for i = lo to hi - 1 do
            s := IS.add a.(i) !s
          done;
          IS.fold (fun v acc -> acc +. float_of_int (v * 3)) !s 0.0
        in
        if abs_float (Ann.Float_sum.query ann ~lo ~hi ~less_than:(lo + 1) -. expect) > 1e-9 then
          ok := false
      done;
      !ok)

(* generic monoid instance: max of a custom record, checking that no inverse
   is needed and combine order doesn't matter *)
module Max_monoid = struct
  type t = int option

  let identity = None

  let combine a b =
    match a, b with
    | None, x | x, None -> x
    | Some x, Some y -> Some (max x y)
end

module Max_tree = Ann.Make (Max_monoid)

let annotated_generic_monoid =
  QCheck.Test.make ~name:"annotated tree over a user-defined monoid" ~count:100
    QCheck.(array_of_size QCheck.Gen.(int_range 1 80) (int_bound 6))
    (fun a ->
      let n = Array.length a in
      let prev = Prev.compute a in
      let tree = Max_tree.create ~fanout:3 ~sample:2 ~keys:prev ~value:(fun i -> Some a.(i)) () in
      let ok = ref true in
      for lo = 0 to n - 1 do
        let hi = n in
        let expect = Array.fold_left (fun acc i -> max acc i) min_int (Array.sub a lo (hi - lo)) in
        (* max over distinct values = max over values *)
        match Max_tree.query tree ~lo ~hi ~less_than:(lo + 1) with
        | Some m when m = expect -> ()
        | _ -> ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Rank encoding (Fig. 8)                                              *)
(* ------------------------------------------------------------------ *)

let rank_encode_oracle =
  QCheck.Test.make ~name:"rank codes are dense, ties shared; row codes unique" ~count:300
    QCheck.(array (int_bound 10))
    (fun a ->
      let n = Array.length a in
      let enc = Rank_encode.of_ints a in
      let enc2 = Rank_encode.of_cmp n ~cmp:(fun i j -> compare a.(i) a.(j)) in
      let groups_below i =
        let s = ref IS.empty in
        Array.iter (fun v -> if v < a.(i) then s := IS.add v !s) a;
        IS.cardinal !s
      in
      enc.Rank_encode.rank_codes = enc2.Rank_encode.rank_codes
      && enc.Rank_encode.row_codes = enc2.Rank_encode.row_codes
      && enc.Rank_encode.permutation = enc2.Rank_encode.permutation
      && Array.for_all (fun i -> enc.Rank_encode.rank_codes.(i) = groups_below i)
           (Array.init n (fun i -> i))
      && List.sort compare (Array.to_list enc.Rank_encode.row_codes) = List.init n (fun i -> i)
      && Array.for_all
           (fun r -> enc.Rank_encode.row_codes.(enc.Rank_encode.permutation.(r)) = r)
           (Array.init n (fun r -> r)))

let float_encode_oracle =
  QCheck.Test.make ~name:"float fast path matches comparator encoding" ~count:300
    QCheck.(pair (array (int_bound 12)) bool)
    (fun (ints, desc) ->
      let a = Array.map (fun v -> float_of_int v /. 4.0) ints in
      let n = Array.length a in
      let fast = Rank_encode.of_floats ~desc a in
      let sign = if desc then -1 else 1 in
      let slow = Rank_encode.of_cmp n ~cmp:(fun i j -> sign * Float.compare a.(i) a.(j)) in
      fast.Rank_encode.rank_codes = slow.Rank_encode.rank_codes
      && fast.Rank_encode.row_codes = slow.Rank_encode.row_codes
      && fast.Rank_encode.permutation = slow.Rank_encode.permutation)

let test_rank_encode_stability () =
  let a = [| 5; 5; 5 |] in
  let enc = Rank_encode.of_ints a in
  Alcotest.(check (array int)) "ties share rank code" [| 0; 0; 0 |] enc.Rank_encode.rank_codes;
  Alcotest.(check (array int)) "row codes break ties by position" [| 0; 1; 2 |]
    enc.Rank_encode.row_codes

(* ------------------------------------------------------------------ *)
(* Range tree / dense rank (§4.4)                                      *)
(* ------------------------------------------------------------------ *)

let range_tree_oracle =
  QCheck.Test.make ~name:"range tree counts distinct keys below threshold" ~count:150 tree_case
    (fun (a, f, k) ->
      let n = Array.length a in
      QCheck.assume (n > 0);
      let rt = Range_tree.create ~fanout:f ~sample:k a in
      let rng = Rng.create (n + f + (7 * k)) in
      let ok = ref true in
      for _ = 1 to 15 do
        let lo = Rng.int rng n in
        let hi = lo + 1 + Rng.int rng (n - lo) in
        let key = Rng.int rng 44 in
        let expect =
          let s = ref IS.empty in
          for i = lo to hi - 1 do
            if a.(i) < key then s := IS.add a.(i) !s
          done;
          IS.cardinal !s
        in
        if Range_tree.distinct_below rt ~lo ~hi ~key <> expect then ok := false
      done;
      !ok)

let test_range_tree_stats () =
  let rt = Range_tree.create ~fanout:4 ~sample:4 (Array.init 100 (fun i -> i mod 7)) in
  Alcotest.(check bool) "positive memory" true (Range_tree.stats_bytes rt > 0);
  Alcotest.(check int) "length" 100 (Range_tree.length rt)

let () =
  Alcotest.run "core"
    [
      ( "mst",
        [
          QCheck_alcotest.to_alcotest count_matches_oracle;
          QCheck_alcotest.to_alcotest select_matches_oracle;
          Alcotest.test_case "select out of bounds" `Quick test_select_out_of_bounds;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "extreme values" `Quick test_negative_values;
          Alcotest.test_case "stats and memory formula" `Quick test_stats_and_formula;
          Alcotest.test_case "payload flag" `Quick test_payload_requires_flag;
          Alcotest.test_case "parameter validation" `Quick test_bad_params;
          Alcotest.test_case "multi-domain build determinism" `Quick test_multi_domain_build;
        ] );
      ( "mst_compact",
        [
          QCheck_alcotest.to_alcotest compact_agrees;
          Alcotest.test_case "half memory" `Quick test_compact_memory;
          Alcotest.test_case "range check" `Quick test_compact_range_check;
        ] );
      ( "prev_occurrence",
        [
          QCheck_alcotest.to_alcotest prev_occurrence_oracle;
          QCheck_alcotest.to_alcotest distinct_frame_identity;
        ] );
      ( "annotated",
        [
          QCheck_alcotest.to_alcotest annotated_sum_oracle;
          QCheck_alcotest.to_alcotest annotated_generic_monoid;
        ] );
      ( "rank_encode",
        [
          QCheck_alcotest.to_alcotest rank_encode_oracle;
          QCheck_alcotest.to_alcotest float_encode_oracle;
          Alcotest.test_case "tie handling" `Quick test_rank_encode_stability;
        ] );
      ( "range_tree",
        [
          QCheck_alcotest.to_alcotest range_tree_oracle;
          Alcotest.test_case "stats" `Quick test_range_tree_stats;
        ] );
    ]
